//! Typed failures of the checkpoint format and the run store.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Everything that can go wrong reading or writing durable experiment
/// state. Checkpoint loads return these instead of panicking so a damaged
/// cache entry can be healed (retrained) rather than aborting a long run.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io(io::Error),
    /// The file does not start with the format's magic bytes — it is not a
    /// checkpoint at all.
    BadMagic {
        /// The bytes actually found (at most four).
        found: Vec<u8>,
    },
    /// The file was written by an unknown (usually future) format version.
    UnsupportedVersion {
        /// The version recorded in the file.
        found: u16,
        /// The version this build reads and writes.
        supported: u16,
    },
    /// The file ends before the declared content does.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The content checksum does not match — the payload was altered or
    /// damaged after it was written.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum of the bytes actually present.
        computed: u64,
    },
    /// The envelope is intact (magic, version, checksum all pass) but the
    /// payload is structurally invalid for the declared kind.
    Corrupt(String),
    /// An existing run directory's manifest disagrees with the requested
    /// run — the fingerprint collided or the directory was tampered with.
    ManifestMismatch {
        /// The run directory holding the conflicting manifest.
        dir: PathBuf,
    },
    /// Another live process holds the run directory's single-writer lock
    /// (e.g. a `serve` process and a batch run racing for the same run).
    Locked {
        /// The locked run directory.
        dir: PathBuf,
        /// Pid recorded in the lock file (0 when it could not be read).
        pid: u32,
    },
    /// A live grid worker holds a per-cell lease on the run directory, so
    /// an exclusive (single-writer) open would clobber in-flight work.
    Leased {
        /// The run directory with held leases.
        dir: PathBuf,
        /// The held cell key (the first, when several are held).
        cell: String,
        /// Pid recorded in that lease.
        pid: u32,
    },
    /// A heartbeat found the lease gone or owned by someone else: this
    /// worker stalled past its own deadline and the cell was reclaimed.
    LeaseLost {
        /// The cell whose lease was lost.
        cell: String,
        /// Pid now holding the cell (0 when the lease file is gone/torn).
        pid: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a checkpoint file (magic bytes {found:02x?})")
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "checkpoint format version {found} is not supported (this build reads version {supported})"
            ),
            StoreError::Truncated { needed, available } => write!(
                f,
                "checkpoint is truncated: needed {needed} bytes, only {available} available"
            ),
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:016x}, computed {computed:016x}"
            ),
            StoreError::Corrupt(why) => write!(f, "checkpoint payload is corrupt: {why}"),
            StoreError::ManifestMismatch { dir } => write!(
                f,
                "run directory {} holds a manifest for a different experiment",
                dir.display()
            ),
            StoreError::Locked { dir, pid } => write!(
                f,
                "run directory {} is locked by live process {pid} (stale locks of dead processes are reclaimed automatically)",
                dir.display()
            ),
            StoreError::Leased { dir, cell, pid } => write!(
                f,
                "run directory {} has live grid workers (cell {cell} leased by process {pid}); wait for them or use grid-worker to join the run",
                dir.display()
            ),
            StoreError::LeaseLost { cell, pid } => write!(
                f,
                "lease on cell {cell} was lost to process {pid} (stalled past its own deadline); the cell must be abandoned"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = StoreError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        let text = e.to_string();
        assert!(text.contains('9') && text.contains('1'), "{text}");
        assert!(StoreError::Truncated {
            needed: 8,
            available: 3
        }
        .to_string()
        .contains("truncated"));
        let leased = StoreError::Leased {
            dir: PathBuf::from("/runs/run-ab"),
            cell: "v1-t4".into(),
            pid: 77,
        }
        .to_string();
        assert!(
            leased.contains("v1-t4") && leased.contains("77"),
            "{leased}"
        );
        let lost = StoreError::LeaseLost {
            cell: "v1-t4".into(),
            pid: 88,
        }
        .to_string();
        assert!(lost.contains("lost") && lost.contains("88"), "{lost}");
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: StoreError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, StoreError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
