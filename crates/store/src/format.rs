//! The versioned, checksummed binary checkpoint format.
//!
//! Every checkpoint file shares one envelope:
//!
//! ```text
//! offset 0   magic  b"SARM"                (4 bytes)
//! offset 4   format version, u16 LE        (2 bytes)
//! offset 6   payload kind, u8              (1 byte)
//! offset 7   kind-specific payload         (variable)
//! trailing   FNV-1a64 of bytes[0..n-8], LE (8 bytes)
//! ```
//!
//! All integers are little-endian; `f32` values are stored as their exact
//! IEEE-754 bit patterns, so a round trip is always bitwise lossless.
//! Decoding validates the envelope *before* interpreting the payload and
//! returns typed [`StoreError`]s — it never panics on hostile input:
//!
//! * wrong/short magic → [`StoreError::BadMagic`] / [`StoreError::Truncated`]
//! * unknown version → [`StoreError::UnsupportedVersion`]
//! * any byte flipped → [`StoreError::ChecksumMismatch`]
//! * structurally invalid payload → [`StoreError::Corrupt`]
//!
//! File writes go through a temp-file-then-rename, so a checkpoint path
//! never holds a partially written file even if the process is killed
//! mid-write.

use std::fs;
use std::path::Path;

use nn::Params;
use tensor::Tensor;

use crate::error::StoreError;

/// Magic bytes identifying a spiking-armor checkpoint file.
pub const MAGIC: [u8; 4] = *b"SARM";

/// The format version this build writes and the only one it reads.
pub const FORMAT_VERSION: u16 = 1;

/// Payload kind tags (one per serialisable artefact).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A single [`Tensor`].
    Tensor = 1,
    /// A full [`Params`] set: named tensors in registration order.
    ParamSet = 2,
    /// A per-cell training summary (see [`CellMeta`](crate::CellMeta)).
    CellMeta = 3,
    /// A cached per-(cell, ε) attack outcome.
    AttackResult = 4,
}

/// Sanity bound on tensor rank; real tensors in this workspace are rank ≤ 4.
const MAX_RANK: u32 = 8;
/// Sanity bound on parameter-name length.
const MAX_NAME_LEN: u32 = 4096;

/// FNV-1a 64-bit hash — the format's content checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------------

/// Wraps a payload in the magic/version/kind envelope and appends the
/// checksum.
fn seal(kind: Kind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 2 + 1 + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind as u8);
    out.extend_from_slice(payload);
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// The `N` bytes at `bytes[at..at + N]` as a fixed array, or a typed
/// truncation error.
fn array_at<const N: usize>(bytes: &[u8], at: usize) -> Result<[u8; N], StoreError> {
    bytes
        .get(at..at + N)
        .and_then(|s| s.try_into().ok())
        .ok_or(StoreError::Truncated {
            needed: at + N,
            available: bytes.len(),
        })
}

/// Validates the envelope and returns the payload of the expected kind.
fn unseal(bytes: &[u8], expected: Kind) -> Result<&[u8], StoreError> {
    let magic = bytes.get(..MAGIC.len()).unwrap_or(bytes);
    if magic != MAGIC {
        return Err(StoreError::BadMagic {
            found: magic.to_vec(),
        });
    }
    // magic(4) + version(2) + kind(1) + checksum(8)
    if bytes.len() < 15 {
        return Err(StoreError::Truncated {
            needed: 15,
            available: bytes.len(),
        });
    }
    let version = u16::from_le_bytes(array_at(bytes, 4)?);
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(array_at(trailer, 0)?);
    let computed = fnv1a(body);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    let [kind_byte] = array_at(body, 6)?;
    if kind_byte != expected as u8 {
        return Err(StoreError::Corrupt(format!(
            "expected payload kind {} but found {kind_byte}",
            expected as u8
        )));
    }
    body.get(7..).ok_or(StoreError::Truncated {
        needed: 15,
        available: bytes.len(),
    })
}

/// A bounds-checked reader over a payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| self.buf.get(self.pos..end))
            .ok_or(StoreError::Truncated {
                needed: n,
                available: self.buf.len().saturating_sub(self.pos),
            })?;
        self.pos += n;
        Ok(slice)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], StoreError> {
        let at = self.pos;
        let out = array_at(self.buf, at)?;
        self.pos += N;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        let [b] = self.array()?;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f32_bits(&mut self) -> Result<f32, StoreError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn finish(self) -> Result<(), StoreError> {
        if self.pos != self.buf.len() {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Tensor
// ---------------------------------------------------------------------------

fn push_tensor(out: &mut Vec<u8>, t: &Tensor) {
    out.extend_from_slice(&(t.dims().len() as u32).to_le_bytes());
    for &d in t.dims() {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &v in t.data() {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn parse_tensor(cur: &mut Cursor<'_>) -> Result<Tensor, StoreError> {
    let rank = cur.u32()?;
    if rank > MAX_RANK {
        return Err(StoreError::Corrupt(format!(
            "tensor rank {rank} exceeds the maximum of {MAX_RANK}"
        )));
    }
    let mut dims = Vec::with_capacity(rank as usize);
    let mut len = 1usize;
    for _ in 0..rank {
        let d = cur.u64()?;
        let d = usize::try_from(d)
            .map_err(|_| StoreError::Corrupt(format!("dimension {d} overflows usize")))?;
        len = len
            .checked_mul(d)
            .ok_or_else(|| StoreError::Corrupt("tensor element count overflows".into()))?;
        dims.push(d);
    }
    let mut data = Vec::with_capacity(len);
    for _ in 0..len {
        data.push(cur.f32_bits()?);
    }
    Tensor::try_from_vec(data, &dims)
        .map_err(|e| StoreError::Corrupt(format!("inconsistent tensor block: {e}")))
}

/// Serialises one tensor into a sealed checkpoint block.
pub fn encode_tensor(t: &Tensor) -> Vec<u8> {
    let mut payload = Vec::new();
    push_tensor(&mut payload, t);
    seal(Kind::Tensor, &payload)
}

/// Decodes a block produced by [`encode_tensor`].
///
/// # Errors
///
/// Returns a typed [`StoreError`] for anything that is not a bitwise-intact
/// tensor block of the supported version.
pub fn decode_tensor(bytes: &[u8]) -> Result<Tensor, StoreError> {
    let mut cur = Cursor::new(unseal(bytes, Kind::Tensor)?);
    let t = parse_tensor(&mut cur)?;
    cur.finish()?;
    Ok(t)
}

// ---------------------------------------------------------------------------
// ParamSet
// ---------------------------------------------------------------------------

/// Serialises a full parameter set (names + tensors, in registration order)
/// into a sealed checkpoint block.
pub fn encode_params(params: &Params) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for (id, t) in params.iter() {
        let name = params.name(id).as_bytes();
        payload.extend_from_slice(&(name.len() as u32).to_le_bytes());
        payload.extend_from_slice(name);
        push_tensor(&mut payload, t);
    }
    seal(Kind::ParamSet, &payload)
}

/// Decodes a block produced by [`encode_params`].
///
/// # Errors
///
/// Returns a typed [`StoreError`] for anything that is not a bitwise-intact
/// parameter-set block of the supported version.
pub fn decode_params(bytes: &[u8]) -> Result<Params, StoreError> {
    let mut cur = Cursor::new(unseal(bytes, Kind::ParamSet)?);
    let count = cur.u32()?;
    let mut params = Params::new();
    for _ in 0..count {
        let name_len = cur.u32()?;
        if name_len > MAX_NAME_LEN {
            return Err(StoreError::Corrupt(format!(
                "parameter name length {name_len} exceeds the maximum of {MAX_NAME_LEN}"
            )));
        }
        let name = std::str::from_utf8(cur.take(name_len as usize)?)
            .map_err(|_| StoreError::Corrupt("parameter name is not UTF-8".into()))?
            .to_string();
        let tensor = parse_tensor(&mut cur)?;
        params.register(name, tensor);
    }
    cur.finish()?;
    Ok(params)
}

// ---------------------------------------------------------------------------
// Small fixed records (cell metadata, attack results)
// ---------------------------------------------------------------------------

/// Serialises a `(clean_accuracy, learnable)` training summary.
pub fn encode_cell_meta(clean_accuracy: f32, learnable: bool) -> Vec<u8> {
    let mut payload = Vec::with_capacity(5);
    payload.extend_from_slice(&clean_accuracy.to_bits().to_le_bytes());
    payload.push(u8::from(learnable));
    seal(Kind::CellMeta, &payload)
}

/// Decodes a block produced by [`encode_cell_meta`].
///
/// # Errors
///
/// Returns a typed [`StoreError`] on any damaged or mismatched block.
pub fn decode_cell_meta(bytes: &[u8]) -> Result<(f32, bool), StoreError> {
    let mut cur = Cursor::new(unseal(bytes, Kind::CellMeta)?);
    let acc = cur.f32_bits()?;
    let learnable = match cur.u8()? {
        0 => false,
        1 => true,
        other => {
            return Err(StoreError::Corrupt(format!(
                "learnable flag must be 0 or 1, got {other}"
            )))
        }
    };
    cur.finish()?;
    Ok((acc, learnable))
}

/// Serialises one cached attack outcome `(ε, robustness)`.
pub fn encode_attack_result(eps: f32, robustness: f32) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8);
    payload.extend_from_slice(&eps.to_bits().to_le_bytes());
    payload.extend_from_slice(&robustness.to_bits().to_le_bytes());
    seal(Kind::AttackResult, &payload)
}

/// Decodes a block produced by [`encode_attack_result`].
///
/// # Errors
///
/// Returns a typed [`StoreError`] on any damaged or mismatched block.
pub fn decode_attack_result(bytes: &[u8]) -> Result<(f32, f32), StoreError> {
    let mut cur = Cursor::new(unseal(bytes, Kind::AttackResult)?);
    let eps = cur.f32_bits()?;
    let robustness = cur.f32_bits()?;
    cur.finish()?;
    Ok((eps, robustness))
}

// ---------------------------------------------------------------------------
// Files
// ---------------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: the full content lands under a
/// temporary name first and is renamed into place, so `path` never holds a
/// torn file even if the process dies mid-write.
///
/// # Errors
///
/// Returns [`StoreError::Io`] if the write or rename fails.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".part");
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Writes one tensor as a checkpoint file (atomically).
///
/// # Errors
///
/// Returns [`StoreError::Io`] if the file cannot be written.
pub fn write_tensor(path: &Path, t: &Tensor) -> Result<(), StoreError> {
    write_atomic(path, &encode_tensor(t))
}

/// Reads a tensor checkpoint written by [`write_tensor`].
///
/// # Errors
///
/// Returns a typed [`StoreError`] if the file is unreadable, damaged, or of
/// an unsupported version.
pub fn read_tensor(path: &Path) -> Result<Tensor, StoreError> {
    decode_tensor(&fs::read(path)?)
}

/// Writes a parameter-set checkpoint file (atomically).
///
/// # Errors
///
/// Returns [`StoreError::Io`] if the file cannot be written.
pub fn write_params(path: &Path, params: &Params) -> Result<(), StoreError> {
    write_atomic(path, &encode_params(params))
}

/// Reads a parameter-set checkpoint written by [`write_params`].
///
/// # Errors
///
/// Returns a typed [`StoreError`] if the file is unreadable, damaged, or of
/// an unsupported version.
pub fn read_params(path: &Path) -> Result<Params, StoreError> {
    decode_params(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tensor() -> Tensor {
        Tensor::from_vec(vec![1.5, -2.25, 0.0, f32::MIN_POSITIVE], &[2, 2])
    }

    #[test]
    fn tensor_round_trip_is_bitwise_exact() {
        let t = sample_tensor();
        let back = decode_tensor(&encode_tensor(&t)).unwrap();
        assert_eq!(back.dims(), t.dims());
        let bits: Vec<u32> = t.data().iter().map(|v| v.to_bits()).collect();
        let back_bits: Vec<u32> = back.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, back_bits);
    }

    #[test]
    fn scalar_and_nan_survive() {
        let t = Tensor::from_vec(vec![f32::NAN], &[1]);
        let back = decode_tensor(&encode_tensor(&t)).unwrap();
        assert_eq!(back.data()[0].to_bits(), t.data()[0].to_bits());
    }

    #[test]
    fn params_round_trip_preserves_names_and_order() {
        let mut p = Params::new();
        p.register("conv.w", Tensor::ones(&[2, 1, 3, 3]));
        p.register("fc.b", Tensor::from_vec(vec![0.5, -0.5], &[2]));
        let back = decode_params(&encode_params(&p)).unwrap();
        assert_eq!(back.len(), 2);
        let names: Vec<&str> = back.iter().map(|(id, _)| back.name(id)).collect();
        assert_eq!(names, ["conv.w", "fc.b"]);
        assert_eq!(back.num_scalars(), p.num_scalars());
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = encode_tensor(&sample_tensor());
        bytes[0] = b'X';
        assert!(matches!(
            decode_tensor(&bytes),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode_tensor(&sample_tensor());
        bytes[4] = 0xFF; // version LE low byte
        let n = bytes.len();
        let checksum = fnv1a(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            decode_tensor(&bytes),
            Err(StoreError::UnsupportedVersion { found, supported: FORMAT_VERSION }) if found != FORMAT_VERSION
        ));
    }

    #[test]
    fn flipped_byte_fails_the_checksum() {
        let mut bytes = encode_tensor(&sample_tensor());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            decode_tensor(&bytes),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = encode_tensor(&sample_tensor());
        for keep in [0, 3, 10, bytes.len() - 1] {
            let err = decode_tensor(&bytes[..keep]).unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. }
                        | StoreError::ChecksumMismatch { .. }
                        | StoreError::BadMagic { .. }
                ),
                "keep={keep}: {err}"
            );
        }
    }

    #[test]
    fn kind_confusion_is_rejected() {
        let bytes = encode_tensor(&sample_tensor());
        assert!(matches!(decode_params(&bytes), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn small_records_round_trip_exactly() {
        let (acc, learnable) = decode_cell_meta(&encode_cell_meta(0.123_456_79, true)).unwrap();
        assert_eq!(acc.to_bits(), 0.123_456_79f32.to_bits());
        assert!(learnable);
        let (eps, rob) = decode_attack_result(&encode_attack_result(0.3, 0.875)).unwrap();
        assert_eq!(eps, 0.3);
        assert_eq!(rob, 0.875);
    }

    #[test]
    fn file_round_trip_and_no_torn_writes() {
        let dir = std::env::temp_dir().join("store_format_files");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bin");
        write_tensor(&path, &sample_tensor()).unwrap();
        assert!(!dir.join("t.bin.part").exists(), "temp file left behind");
        assert_eq!(read_tensor(&path).unwrap(), sample_tensor());
    }
}
