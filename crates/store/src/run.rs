//! The [`RunStore`] handle: one fingerprinted directory per run, holding a
//! manifest, per-cell training checkpoints, a separate per-(cell, ε) attack
//! cache, and the event journal.

use std::fs;
use std::path::{Path, PathBuf};

use nn::Params;

use crate::error::StoreError;
use crate::fingerprint::Fingerprint;
use crate::format;
use crate::journal::{Event, Journal};
use crate::lock::RunLock;

/// File name of the run manifest inside a run directory.
pub const MANIFEST_FILE: &str = "manifest.json";
/// File name of the event journal inside a run directory.
pub const EVENTS_FILE: &str = "events.jsonl";

/// The checkpointed training summary of one grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMeta {
    /// Clean test accuracy after training.
    pub clean_accuracy: f32,
    /// Whether the accuracy met the learnability threshold `A_th`.
    pub learnable: bool,
}

/// The result of [`RunStore::open`].
#[derive(Debug)]
pub struct OpenedRun {
    /// The opened store.
    pub store: RunStore,
    /// `true` when an existing run directory (and its checkpoints) is being
    /// reused.
    pub resumed: bool,
}

/// A handle to one run directory.
///
/// The handle is `Sync`: grid workers share one `&RunStore` and each writes
/// only its own cell's files, while journal appends are serialised through
/// an internal mutex.
///
/// The handle also *owns the directory's single-writer lock*
/// ([`RunLock`]): a second process (or a second handle in this process)
/// opening the same run directory gets [`StoreError::Locked`] until this
/// handle drops, so a long-lived server and a concurrent batch run can
/// never interleave writes into one run directory.
#[derive(Debug)]
pub struct RunStore {
    dir: PathBuf,
    journal: Journal,
    /// Held for the whole lifetime of the handle; released (file removed)
    /// when the handle drops. Declared after `journal` so the release
    /// event can still be appended during drop.
    lock: RunLock,
}

impl RunStore {
    /// Opens the run directory for `fingerprint` under `root`, creating it
    /// if needed.
    ///
    /// With `resume = false` any existing directory for this fingerprint is
    /// cleared first — the run starts from scratch. With `resume = true`
    /// existing checkpoints are kept and will be served as cache hits.
    /// Either way the manifest is compared byte-for-byte when it already
    /// exists; a mismatch means the directory does not describe this
    /// experiment and is refused.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures,
    /// [`StoreError::ManifestMismatch`] when the directory belongs to a
    /// different experiment, and [`StoreError::Locked`] when another live
    /// handle (this process or another) is still writing the directory.
    pub fn open(
        root: &Path,
        fingerprint: &Fingerprint,
        manifest_json: &str,
        resume: bool,
    ) -> Result<OpenedRun, StoreError> {
        let dir = root.join(format!("run-{}", fingerprint.hex()));
        // Single-writer discipline: take the sibling lock before touching
        // anything inside (or clearing) the directory. Dropping the store
        // releases it; a killed process leaves a stale lock that the next
        // open reclaims (see `crate::lock`).
        fs::create_dir_all(root)?;
        let lock = RunLock::acquire(&dir, &fingerprint.hex())?;
        if !resume && dir.exists() {
            fs::remove_dir_all(&dir)?;
        }
        let manifest_path = dir.join(MANIFEST_FILE);
        let resumed = resume && manifest_path.exists();
        fs::create_dir_all(dir.join("cells"))?;
        if resumed {
            let existing = fs::read_to_string(&manifest_path)?;
            if existing != manifest_json {
                return Err(StoreError::ManifestMismatch { dir });
            }
        } else {
            format::write_atomic(&manifest_path, manifest_json.as_bytes())?;
        }
        let journal = Journal::open_append(&dir.join(EVENTS_FILE))?;
        let store = Self { dir, journal, lock };
        store.log(&Event::LockAcquired {
            pid: store.lock.payload().pid,
        });
        store.log(&Event::RunStarted { resumed });
        Ok(OpenedRun { store, resumed })
    }

    /// The single-writer lock file guarding this run directory.
    pub fn lock_path(&self) -> &Path {
        self.lock.path()
    }

    /// The run directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The journal file path (`events.jsonl`).
    pub fn journal_path(&self) -> &Path {
        self.journal.path()
    }

    /// Appends an event to the journal. Journal writes are best-effort:
    /// a failure is reported on stderr but never aborts the run, because
    /// observability must not cost results.
    pub fn log(&self, event: &Event) {
        obs::counter_add("store/journal_events", 1);
        if let Err(e) = self.journal.log(event) {
            eprintln!(
                "warning: could not append to {}: {e}",
                self.journal.path().display()
            );
        }
    }

    fn cell_dir(&self, cell: &str) -> PathBuf {
        self.dir.join("cells").join(cell)
    }

    // -- training cache ----------------------------------------------------

    /// Checkpoints a trained cell: weights plus training summary.
    ///
    /// The weights land before the summary, and the loader requires the
    /// summary, so a cell killed mid-save is simply absent, never torn.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the checkpoint cannot be written.
    pub fn save_trained(
        &self,
        cell: &str,
        params: &Params,
        meta: &CellMeta,
    ) -> Result<(), StoreError> {
        let dir = self.cell_dir(cell);
        fs::create_dir_all(&dir)?;
        format::write_params(&dir.join("params.bin"), params)?;
        format::write_atomic(
            &dir.join("train.bin"),
            &format::encode_cell_meta(meta.clean_accuracy, meta.learnable),
        )
    }

    /// Loads a cell's training checkpoint, if it is complete.
    ///
    /// `Ok(None)` means the cell was never (fully) checkpointed; any error
    /// means files exist but cannot be trusted.
    ///
    /// # Errors
    ///
    /// Returns a typed [`StoreError`] if a present checkpoint is damaged,
    /// truncated, or of an unsupported version.
    pub fn load_trained(&self, cell: &str) -> Result<Option<(Params, CellMeta)>, StoreError> {
        let dir = self.cell_dir(cell);
        let meta_path = dir.join("train.bin");
        if !meta_path.exists() {
            return Ok(None);
        }
        let (clean_accuracy, learnable) = format::decode_cell_meta(&fs::read(&meta_path)?)?;
        let params = format::read_params(&dir.join("params.bin"))?;
        Ok(Some((
            params,
            CellMeta {
                clean_accuracy,
                learnable,
            },
        )))
    }

    // -- attack cache ------------------------------------------------------

    /// The attack-cache file name for sweep position `index` at budget
    /// `eps`. The exact ε bit pattern and its position in the sweep both
    /// participate, because the PGD instance is seeded per sweep position —
    /// reordering the sweep must miss the cache.
    fn attack_path(&self, cell: &str, index: usize, eps: f32) -> PathBuf {
        self.cell_dir(cell)
            .join("attacks")
            .join(format!("k{index:02}-e{:08x}.bin", eps.to_bits()))
    }

    /// Caches one `(cell, ε)` attack outcome.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the entry cannot be written.
    pub fn save_attack(
        &self,
        cell: &str,
        index: usize,
        eps: f32,
        robustness: f32,
    ) -> Result<(), StoreError> {
        let path = self.attack_path(cell, index, eps);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        format::write_atomic(&path, &format::encode_attack_result(eps, robustness))
    }

    /// Looks up a cached `(cell, ε)` attack outcome. `Ok(None)` on a miss.
    ///
    /// # Errors
    ///
    /// Returns a typed [`StoreError`] if a present entry is damaged or was
    /// recorded for a different ε than its file name claims.
    pub fn load_attack(
        &self,
        cell: &str,
        index: usize,
        eps: f32,
    ) -> Result<Option<f32>, StoreError> {
        let path = self.attack_path(cell, index, eps);
        if !path.exists() {
            return Ok(None);
        }
        let (stored_eps, robustness) = format::decode_attack_result(&fs::read(&path)?)?;
        if stored_eps.to_bits() != eps.to_bits() {
            return Err(StoreError::Corrupt(format!(
                "attack cache entry stores ε bits {:08x}, expected {:08x}",
                stored_eps.to_bits(),
                eps.to_bits()
            )));
        }
        Ok(Some(robustness))
    }
}

impl Drop for RunStore {
    fn drop(&mut self) {
        // Journal the release while the journal is still open; the lock
        // field's own drop then removes the lock file.
        self.log(&Event::LockReleased {
            pid: self.lock.payload().pid,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Tensor;

    fn fresh_root(name: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("store_run_tests_{name}"));
        let _ = fs::remove_dir_all(&root);
        root
    }

    fn fp(tag: &[u8]) -> Fingerprint {
        Fingerprint::builder().section("t", tag).finish()
    }

    fn sample_params() -> Params {
        let mut p = Params::new();
        p.register("w", Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        p
    }

    #[test]
    fn fresh_open_then_resume_round_trips_cells() {
        let root = fresh_root("roundtrip");
        let f = fp(b"a");
        let opened = RunStore::open(&root, &f, "{\"m\":1}", false).unwrap();
        assert!(!opened.resumed);
        let meta = CellMeta {
            clean_accuracy: 0.8125,
            learnable: true,
        };
        opened
            .store
            .save_trained("c1", &sample_params(), &meta)
            .unwrap();
        opened.store.save_attack("c1", 0, 0.5, 0.75).unwrap();
        drop(opened); // release the single-writer lock before reopening

        let reopened = RunStore::open(&root, &f, "{\"m\":1}", true).unwrap();
        assert!(reopened.resumed);
        let (params, back) = reopened.store.load_trained("c1").unwrap().unwrap();
        assert_eq!(back, meta);
        assert_eq!(params.num_scalars(), 3);
        assert_eq!(
            reopened.store.load_attack("c1", 0, 0.5).unwrap(),
            Some(0.75)
        );
        // Same ε at a different sweep position is a distinct entry.
        assert_eq!(reopened.store.load_attack("c1", 1, 0.5).unwrap(), None);
        assert_eq!(reopened.store.load_trained("c2").unwrap().map(|_| ()), None);
    }

    #[test]
    fn non_resume_open_clears_prior_state() {
        let root = fresh_root("clears");
        let f = fp(b"b");
        let first = RunStore::open(&root, &f, "{}", false).unwrap();
        first
            .store
            .save_trained(
                "c1",
                &sample_params(),
                &CellMeta {
                    clean_accuracy: 0.5,
                    learnable: true,
                },
            )
            .unwrap();
        drop(first); // release the single-writer lock before reopening
        let second = RunStore::open(&root, &f, "{}", false).unwrap();
        assert!(!second.resumed);
        assert!(second.store.load_trained("c1").unwrap().is_none());
    }

    #[test]
    fn manifest_disagreement_is_refused() {
        let root = fresh_root("mismatch");
        let f = fp(b"c");
        RunStore::open(&root, &f, "{\"v\":1}", false).unwrap();
        let err = RunStore::open(&root, &f, "{\"v\":2}", true).unwrap_err();
        assert!(matches!(err, StoreError::ManifestMismatch { .. }));
    }

    #[test]
    fn different_fingerprints_use_disjoint_directories() {
        let root = fresh_root("disjoint");
        let a = RunStore::open(&root, &fp(b"a"), "{}", false).unwrap();
        let b = RunStore::open(&root, &fp(b"b"), "{}", false).unwrap();
        assert_ne!(a.store.dir(), b.store.dir());
    }

    #[test]
    fn journal_records_run_starts() {
        let root = fresh_root("journal");
        let f = fp(b"j");
        let opened = RunStore::open(&root, &f, "{}", false).unwrap();
        opened.store.log(&Event::CellStarted { cell: "c".into() });
        drop(opened);
        let reopened = RunStore::open(&root, &f, "{}", true).unwrap();
        let events = crate::journal::read_events(reopened.store.journal_path()).unwrap();
        let pid = std::process::id();
        assert_eq!(
            events,
            [
                Event::LockAcquired { pid },
                Event::RunStarted { resumed: false },
                Event::CellStarted { cell: "c".into() },
                Event::LockReleased { pid },
                Event::LockAcquired { pid },
                Event::RunStarted { resumed: true },
            ]
        );
    }

    #[test]
    fn second_open_of_a_held_run_directory_is_refused() {
        let root = fresh_root("locked");
        let f = fp(b"l");
        let held = RunStore::open(&root, &f, "{}", false).unwrap();
        let err = RunStore::open(&root, &f, "{}", true).unwrap_err();
        match err {
            StoreError::Locked { pid, .. } => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
        // The refused open must not have disturbed the holder's state.
        assert!(held.store.lock_path().exists());
        drop(held);
        assert!(RunStore::open(&root, &f, "{}", true).is_ok());
    }

    #[test]
    fn damaged_cell_checkpoint_is_a_typed_error() {
        let root = fresh_root("damaged");
        let f = fp(b"d");
        let opened = RunStore::open(&root, &f, "{}", false).unwrap();
        opened
            .store
            .save_trained(
                "c1",
                &sample_params(),
                &CellMeta {
                    clean_accuracy: 0.5,
                    learnable: true,
                },
            )
            .unwrap();
        let params_path = opened.store.dir().join("cells/c1/params.bin");
        let mut bytes = fs::read(&params_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&params_path, bytes).unwrap();
        assert!(matches!(
            opened.store.load_trained("c1"),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }
}
