//! The [`RunStore`] handle: one fingerprinted directory per run, holding a
//! manifest, per-cell training checkpoints, a separate per-(cell, ε) attack
//! cache, and the event journal.

use std::fs;
use std::path::{Path, PathBuf};

use nn::Params;

use crate::error::StoreError;
use crate::fingerprint::Fingerprint;
use crate::format;
use crate::journal::{Event, Journal};
use crate::lease::{self, CellLease, Claim};
use crate::lock::{self, RunLock};

/// File name of the run manifest inside a run directory.
pub const MANIFEST_FILE: &str = "manifest.json";
/// File name of the event journal inside a run directory.
pub const EVENTS_FILE: &str = "events.jsonl";
/// File name of a cell's completed-outcome artifact inside its cell dir.
pub const OUTCOME_FILE: &str = "outcome.json";

/// The checkpointed training summary of one grid cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMeta {
    /// Clean test accuracy after training.
    pub clean_accuracy: f32,
    /// Whether the accuracy met the learnability threshold `A_th`.
    pub learnable: bool,
}

/// The result of [`RunStore::open`].
#[derive(Debug)]
pub struct OpenedRun {
    /// The opened store.
    pub store: RunStore,
    /// `true` when an existing run directory (and its checkpoints) is being
    /// reused.
    pub resumed: bool,
}

/// A handle to one run directory.
///
/// The handle is `Sync`: grid workers share one `&RunStore` and each writes
/// only its own cell's files, while journal appends are serialised through
/// an internal mutex.
///
/// An exclusive handle ([`RunStore::open`]) also *owns the directory's
/// single-writer lock* ([`RunLock`]): a second process (or a second handle
/// in this process) opening the same run directory gets
/// [`StoreError::Locked`] until this handle drops, so a long-lived server
/// and a concurrent batch run can never interleave writes into one run
/// directory.
///
/// A *shared* handle ([`RunStore::open_shared`]) takes no whole-run lock:
/// distributed grid workers each hold one, and mutual exclusion moves down
/// to per-cell [`CellLease`]s ([`RunStore::claim_cell`]).
#[derive(Debug)]
pub struct RunStore {
    dir: PathBuf,
    journal: Journal,
    /// `Some` for exclusive handles: held for the whole lifetime and
    /// released (file removed) when the handle drops. Declared after
    /// `journal` so the release event can still be appended during drop.
    /// `None` for shared (grid-worker) handles.
    lock: Option<RunLock>,
}

impl RunStore {
    /// Opens the run directory for `fingerprint` under `root`, creating it
    /// if needed.
    ///
    /// With `resume = false` any existing directory for this fingerprint is
    /// cleared first — the run starts from scratch. With `resume = true`
    /// existing checkpoints are kept and will be served as cache hits.
    /// Either way the manifest is compared byte-for-byte when it already
    /// exists; a mismatch means the directory does not describe this
    /// experiment and is refused.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures,
    /// [`StoreError::ManifestMismatch`] when the directory belongs to a
    /// different experiment, [`StoreError::Locked`] when another live
    /// handle (this process or another) is still writing the directory,
    /// and [`StoreError::Leased`] when live grid workers hold per-cell
    /// leases on it.
    pub fn open(
        root: &Path,
        fingerprint: &Fingerprint,
        manifest_json: &str,
        resume: bool,
    ) -> Result<OpenedRun, StoreError> {
        let dir = root.join(format!("run-{}", fingerprint.hex()));
        // Single-writer discipline: take the sibling lock before touching
        // anything inside (or clearing) the directory. Dropping the store
        // releases it; a killed process leaves a stale lock that the next
        // open reclaims (see `crate::lock`).
        fs::create_dir_all(root)?;
        let lock = RunLock::acquire(&dir, &fingerprint.hex())?;
        // Grid workers coordinate through per-cell leases instead of this
        // lock, so holding it is not enough: a held lease means a live
        // worker is mid-cell and an exclusive writer (worst case: a
        // non-resume open about to `remove_dir_all`) must stand down.
        if let Some(held) = lease::held_leases(&dir)?.into_iter().next() {
            return Err(StoreError::Leased {
                dir,
                cell: held.cell,
                pid: held.pid,
            });
        }
        if !resume {
            if dir.exists() {
                fs::remove_dir_all(&dir)?;
            }
            // Stale leases of dead workers describe state that no longer
            // exists; a fresh run must not inherit them.
            lease::clear_leases(&dir)?;
        }
        let manifest_path = dir.join(MANIFEST_FILE);
        let resumed = resume && manifest_path.exists();
        fs::create_dir_all(dir.join("cells"))?;
        if resumed {
            let existing = fs::read_to_string(&manifest_path)?;
            if existing != manifest_json {
                return Err(StoreError::ManifestMismatch { dir });
            }
        } else {
            format::write_atomic(&manifest_path, manifest_json.as_bytes())?;
        }
        let journal = Journal::open_append(&dir.join(EVENTS_FILE))?;
        let store = Self {
            dir,
            journal,
            lock: Some(lock),
        };
        store.log(&Event::LockAcquired {
            pid: std::process::id(),
        });
        store.log(&Event::RunStarted { resumed });
        Ok(OpenedRun { store, resumed })
    }

    /// Opens the run directory for `fingerprint` under `root` as a *shared*
    /// grid-worker handle: no single-writer lock is taken, and any number
    /// of worker processes may hold one concurrently. Mutual exclusion
    /// moves down to per-cell leases ([`Self::claim_cell`]).
    ///
    /// A shared open never clears existing state — workers are always
    /// additive (resume semantics). To restart a grid from scratch, delete
    /// the run directory, or run the single-process command without
    /// `--resume` first. The manifest is created if absent and compared
    /// byte-for-byte when present, exactly like the exclusive path.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Locked`] when a live exclusive writer holds
    /// the run directory, [`StoreError::ManifestMismatch`] when the
    /// directory describes a different experiment, and [`StoreError::Io`]
    /// on filesystem failures.
    pub fn open_shared(
        root: &Path,
        fingerprint: &Fingerprint,
        manifest_json: &str,
    ) -> Result<OpenedRun, StoreError> {
        let dir = root.join(format!("run-{}", fingerprint.hex()));
        fs::create_dir_all(root)?;
        if let Some(pid) = lock::live_holder(&dir) {
            return Err(StoreError::Locked { dir, pid });
        }
        fs::create_dir_all(dir.join("cells"))?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let resumed = manifest_path.exists();
        if !resumed {
            // Pid-suffixed temp + atomic rename: several workers may race
            // this first write, but they all carry identical bytes, and
            // rename guarantees readers only ever see a complete file.
            let mut tmp = manifest_path.as_os_str().to_owned();
            tmp.push(format!(".part{}", std::process::id()));
            let tmp = PathBuf::from(tmp);
            fs::write(&tmp, manifest_json.as_bytes())?;
            fs::rename(&tmp, &manifest_path)?;
        }
        let existing = fs::read_to_string(&manifest_path)?;
        if existing != manifest_json {
            return Err(StoreError::ManifestMismatch { dir });
        }
        let journal = Journal::open_append(&dir.join(EVENTS_FILE))?;
        let store = Self {
            dir,
            journal,
            lock: None,
        };
        store.log(&Event::WorkerStarted {
            pid: std::process::id(),
        });
        store.log(&Event::RunStarted { resumed });
        Ok(OpenedRun { store, resumed })
    }

    /// The single-writer lock file guarding this run directory, or `None`
    /// for a shared (grid-worker) handle, which holds no whole-run lock.
    pub fn lock_path(&self) -> Option<&Path> {
        self.lock.as_ref().map(|l| l.path())
    }

    /// `true` for shared (grid-worker) handles, which coordinate through
    /// per-cell leases instead of the single-writer lock.
    pub fn is_shared(&self) -> bool {
        self.lock.is_none()
    }

    /// The run directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The journal file path (`events.jsonl`).
    pub fn journal_path(&self) -> &Path {
        self.journal.path()
    }

    /// Appends an event to the journal. Journal writes are best-effort:
    /// a failure is reported on stderr but never aborts the run, because
    /// observability must not cost results.
    pub fn log(&self, event: &Event) {
        obs::counter_add("store/journal_events", 1);
        if let Err(e) = self.journal.log(event) {
            eprintln!(
                "warning: could not append to {}: {e}",
                self.journal.path().display()
            );
        }
    }

    fn cell_dir(&self, cell: &str) -> PathBuf {
        self.dir.join("cells").join(cell)
    }

    // -- per-cell leases (distributed grid runs) ---------------------------

    /// Tries to claim `cell` for `ttl_millis` milliseconds.
    ///
    /// `Ok(Some(lease))` means the cell is ours until released or until the
    /// deadline lapses without a heartbeat. `Ok(None)` means another live
    /// worker holds it — move on to the next cell. A stale lease (dead pid,
    /// expired deadline, torn payload) is reclaimed transparently and the
    /// reclaim is journaled.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures.
    pub fn claim_cell(&self, cell: &str, ttl_millis: u64) -> Result<Option<CellLease>, StoreError> {
        match CellLease::acquire(&self.dir, cell, ttl_millis)? {
            Claim::Acquired { lease, reclaimed } => {
                if let Some(r) = reclaimed {
                    obs::counter_add("store/lease_reclaims", 1);
                    self.log(&Event::LeaseReclaimed {
                        cell: cell.to_string(),
                        old_pid: r.old_pid,
                        pid: std::process::id(),
                        reason: r.reason.to_string(),
                    });
                }
                self.log(&Event::LeaseAcquired {
                    cell: cell.to_string(),
                    pid: std::process::id(),
                    deadline_millis: lease.payload().deadline_millis,
                });
                Ok(Some(lease))
            }
            Claim::Busy { .. } => Ok(None),
        }
    }

    /// Renews `lease` for another `ttl_millis` milliseconds and journals
    /// the heartbeat.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::LeaseLost`] when the cell was reclaimed out
    /// from under us (we stalled past our own deadline) — the caller must
    /// abandon the cell — and [`StoreError::Io`] on filesystem failures.
    pub fn heartbeat_cell(&self, lease: &mut CellLease, ttl_millis: u64) -> Result<(), StoreError> {
        lease.heartbeat(ttl_millis)?;
        self.log(&Event::LeaseHeartbeat {
            cell: lease.cell().to_string(),
            pid: std::process::id(),
            deadline_millis: lease.payload().deadline_millis,
        });
        Ok(())
    }

    /// Releases `lease` (removing its file) and journals the release.
    pub fn release_cell(&self, lease: CellLease) {
        self.log(&Event::LeaseReleased {
            cell: lease.cell().to_string(),
            pid: std::process::id(),
        });
        lease.release();
    }

    // -- per-cell outcome artifacts ----------------------------------------

    /// The completed-outcome artifact path of `cell`.
    pub fn cell_outcome_path(&self, cell: &str) -> PathBuf {
        self.cell_dir(cell).join(OUTCOME_FILE)
    }

    /// Durably publishes `cell`'s completed outcome (serialized JSON).
    ///
    /// The write is atomic through a pid-suffixed temp file + rename, so a
    /// present `outcome.json` is always complete: [`Self::cell_completed`]
    /// turning `true` is the commit point after which no worker of this
    /// run will ever recompute the cell.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the artifact cannot be written.
    pub fn save_cell_outcome(&self, cell: &str, outcome_json: &str) -> Result<(), StoreError> {
        let path = self.cell_outcome_path(cell);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".part{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, outcome_json.as_bytes())?;
        fs::rename(&tmp, &path)?;
        self.log(&Event::CellCompleted {
            cell: cell.to_string(),
            pid: std::process::id(),
        });
        Ok(())
    }

    /// Loads `cell`'s completed outcome, if published. `Ok(None)` means the
    /// cell has not completed yet.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if a present artifact cannot be read.
    pub fn load_cell_outcome(&self, cell: &str) -> Result<Option<String>, StoreError> {
        match fs::read_to_string(self.cell_outcome_path(cell)) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// `true` once `cell`'s outcome artifact has been durably published.
    pub fn cell_completed(&self, cell: &str) -> bool {
        self.cell_outcome_path(cell).exists()
    }

    // -- training cache ----------------------------------------------------

    /// Checkpoints a trained cell: weights plus training summary.
    ///
    /// The weights land before the summary, and the loader requires the
    /// summary, so a cell killed mid-save is simply absent, never torn.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the checkpoint cannot be written.
    pub fn save_trained(
        &self,
        cell: &str,
        params: &Params,
        meta: &CellMeta,
    ) -> Result<(), StoreError> {
        let dir = self.cell_dir(cell);
        fs::create_dir_all(&dir)?;
        format::write_params(&dir.join("params.bin"), params)?;
        format::write_atomic(
            &dir.join("train.bin"),
            &format::encode_cell_meta(meta.clean_accuracy, meta.learnable),
        )
    }

    /// Loads a cell's training checkpoint, if it is complete.
    ///
    /// `Ok(None)` means the cell was never (fully) checkpointed; any error
    /// means files exist but cannot be trusted.
    ///
    /// # Errors
    ///
    /// Returns a typed [`StoreError`] if a present checkpoint is damaged,
    /// truncated, or of an unsupported version.
    pub fn load_trained(&self, cell: &str) -> Result<Option<(Params, CellMeta)>, StoreError> {
        let dir = self.cell_dir(cell);
        let meta_path = dir.join("train.bin");
        if !meta_path.exists() {
            return Ok(None);
        }
        let (clean_accuracy, learnable) = format::decode_cell_meta(&fs::read(&meta_path)?)?;
        let params = format::read_params(&dir.join("params.bin"))?;
        Ok(Some((
            params,
            CellMeta {
                clean_accuracy,
                learnable,
            },
        )))
    }

    // -- attack cache ------------------------------------------------------

    /// The attack-cache file name for sweep position `index` at budget
    /// `eps`. The exact ε bit pattern and its position in the sweep both
    /// participate, because the PGD instance is seeded per sweep position —
    /// reordering the sweep must miss the cache.
    fn attack_path(&self, cell: &str, index: usize, eps: f32) -> PathBuf {
        self.cell_dir(cell)
            .join("attacks")
            .join(format!("k{index:02}-e{:08x}.bin", eps.to_bits()))
    }

    /// Caches one `(cell, ε)` attack outcome.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] if the entry cannot be written.
    pub fn save_attack(
        &self,
        cell: &str,
        index: usize,
        eps: f32,
        robustness: f32,
    ) -> Result<(), StoreError> {
        let path = self.attack_path(cell, index, eps);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        format::write_atomic(&path, &format::encode_attack_result(eps, robustness))
    }

    /// Looks up a cached `(cell, ε)` attack outcome. `Ok(None)` on a miss.
    ///
    /// # Errors
    ///
    /// Returns a typed [`StoreError`] if a present entry is damaged or was
    /// recorded for a different ε than its file name claims.
    pub fn load_attack(
        &self,
        cell: &str,
        index: usize,
        eps: f32,
    ) -> Result<Option<f32>, StoreError> {
        let path = self.attack_path(cell, index, eps);
        if !path.exists() {
            return Ok(None);
        }
        let (stored_eps, robustness) = format::decode_attack_result(&fs::read(&path)?)?;
        if stored_eps.to_bits() != eps.to_bits() {
            return Err(StoreError::Corrupt(format!(
                "attack cache entry stores ε bits {:08x}, expected {:08x}",
                stored_eps.to_bits(),
                eps.to_bits()
            )));
        }
        Ok(Some(robustness))
    }
}

impl Drop for RunStore {
    fn drop(&mut self) {
        // Journal the release while the journal is still open; the lock
        // field's own drop then removes the lock file. Shared handles hold
        // no lock and journal nothing — their per-cell leases release (and
        // journal) individually.
        if self.lock.is_some() {
            self.log(&Event::LockReleased {
                pid: std::process::id(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Tensor;

    fn fresh_root(name: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("store_run_tests_{name}"));
        let _ = fs::remove_dir_all(&root);
        root
    }

    fn fp(tag: &[u8]) -> Fingerprint {
        Fingerprint::builder().section("t", tag).finish()
    }

    fn sample_params() -> Params {
        let mut p = Params::new();
        p.register("w", Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        p
    }

    #[test]
    fn fresh_open_then_resume_round_trips_cells() {
        let root = fresh_root("roundtrip");
        let f = fp(b"a");
        let opened = RunStore::open(&root, &f, "{\"m\":1}", false).unwrap();
        assert!(!opened.resumed);
        let meta = CellMeta {
            clean_accuracy: 0.8125,
            learnable: true,
        };
        opened
            .store
            .save_trained("c1", &sample_params(), &meta)
            .unwrap();
        opened.store.save_attack("c1", 0, 0.5, 0.75).unwrap();
        drop(opened); // release the single-writer lock before reopening

        let reopened = RunStore::open(&root, &f, "{\"m\":1}", true).unwrap();
        assert!(reopened.resumed);
        let (params, back) = reopened.store.load_trained("c1").unwrap().unwrap();
        assert_eq!(back, meta);
        assert_eq!(params.num_scalars(), 3);
        assert_eq!(
            reopened.store.load_attack("c1", 0, 0.5).unwrap(),
            Some(0.75)
        );
        // Same ε at a different sweep position is a distinct entry.
        assert_eq!(reopened.store.load_attack("c1", 1, 0.5).unwrap(), None);
        assert_eq!(reopened.store.load_trained("c2").unwrap().map(|_| ()), None);
    }

    #[test]
    fn non_resume_open_clears_prior_state() {
        let root = fresh_root("clears");
        let f = fp(b"b");
        let first = RunStore::open(&root, &f, "{}", false).unwrap();
        first
            .store
            .save_trained(
                "c1",
                &sample_params(),
                &CellMeta {
                    clean_accuracy: 0.5,
                    learnable: true,
                },
            )
            .unwrap();
        drop(first); // release the single-writer lock before reopening
        let second = RunStore::open(&root, &f, "{}", false).unwrap();
        assert!(!second.resumed);
        assert!(second.store.load_trained("c1").unwrap().is_none());
    }

    #[test]
    fn manifest_disagreement_is_refused() {
        let root = fresh_root("mismatch");
        let f = fp(b"c");
        RunStore::open(&root, &f, "{\"v\":1}", false).unwrap();
        let err = RunStore::open(&root, &f, "{\"v\":2}", true).unwrap_err();
        assert!(matches!(err, StoreError::ManifestMismatch { .. }));
    }

    #[test]
    fn different_fingerprints_use_disjoint_directories() {
        let root = fresh_root("disjoint");
        let a = RunStore::open(&root, &fp(b"a"), "{}", false).unwrap();
        let b = RunStore::open(&root, &fp(b"b"), "{}", false).unwrap();
        assert_ne!(a.store.dir(), b.store.dir());
    }

    #[test]
    fn journal_records_run_starts() {
        let root = fresh_root("journal");
        let f = fp(b"j");
        let opened = RunStore::open(&root, &f, "{}", false).unwrap();
        opened.store.log(&Event::CellStarted { cell: "c".into() });
        drop(opened);
        let reopened = RunStore::open(&root, &f, "{}", true).unwrap();
        let events = crate::journal::read_events(reopened.store.journal_path()).unwrap();
        let pid = std::process::id();
        assert_eq!(
            events,
            [
                Event::LockAcquired { pid },
                Event::RunStarted { resumed: false },
                Event::CellStarted { cell: "c".into() },
                Event::LockReleased { pid },
                Event::LockAcquired { pid },
                Event::RunStarted { resumed: true },
            ]
        );
    }

    #[test]
    fn second_open_of_a_held_run_directory_is_refused() {
        let root = fresh_root("locked");
        let f = fp(b"l");
        let held = RunStore::open(&root, &f, "{}", false).unwrap();
        let err = RunStore::open(&root, &f, "{}", true).unwrap_err();
        match err {
            StoreError::Locked { pid, .. } => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
        // The refused open must not have disturbed the holder's state.
        assert!(held.store.lock_path().is_some_and(|p| p.exists()));
        drop(held);
        assert!(RunStore::open(&root, &f, "{}", true).is_ok());
    }

    #[test]
    fn shared_opens_coexist_without_a_lock() {
        let root = fresh_root("shared");
        let f = fp(b"s");
        let a = RunStore::open_shared(&root, &f, "{\"m\":1}").unwrap();
        let b = RunStore::open_shared(&root, &f, "{\"m\":1}").unwrap();
        assert!(a.store.is_shared() && b.store.is_shared());
        assert!(a.store.lock_path().is_none());
        assert!(b.resumed, "the second worker joins an existing manifest");
        // No single-writer lock file exists while both handles live.
        assert!(!crate::lock::lock_path(a.store.dir()).exists());
        // Manifest disagreement is still refused.
        let err = RunStore::open_shared(&root, &f, "{\"m\":2}").unwrap_err();
        assert!(matches!(err, StoreError::ManifestMismatch { .. }));
    }

    #[test]
    fn shared_open_defers_to_a_live_exclusive_writer() {
        let root = fresh_root("shared_vs_exclusive");
        let f = fp(b"x");
        let held = RunStore::open(&root, &f, "{}", false).unwrap();
        let err = RunStore::open_shared(&root, &f, "{}").unwrap_err();
        match err {
            StoreError::Locked { pid, .. } => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(held);
        assert!(RunStore::open_shared(&root, &f, "{}").is_ok());
    }

    #[test]
    fn exclusive_open_defers_to_a_held_cell_lease() {
        let root = fresh_root("exclusive_vs_lease");
        let f = fp(b"y");
        let worker = RunStore::open_shared(&root, &f, "{}").unwrap();
        let lease = worker
            .store
            .claim_cell("c1", 60_000)
            .unwrap()
            .expect("fresh cell must be claimable");
        let err = RunStore::open(&root, &f, "{}", true).unwrap_err();
        match err {
            StoreError::Leased { cell, pid, .. } => {
                assert_eq!(cell, "c1");
                assert_eq!(pid, std::process::id());
            }
            other => panic!("expected Leased, got {other:?}"),
        }
        worker.store.release_cell(lease);
        assert!(RunStore::open(&root, &f, "{}", true).is_ok());
    }

    #[test]
    fn claimed_cell_is_busy_for_other_workers() {
        let root = fresh_root("claim_busy");
        let f = fp(b"z");
        let a = RunStore::open_shared(&root, &f, "{}").unwrap();
        let b = RunStore::open_shared(&root, &f, "{}").unwrap();
        let lease = a.store.claim_cell("c", 60_000).unwrap().unwrap();
        assert!(b.store.claim_cell("c", 60_000).unwrap().is_none());
        a.store.release_cell(lease);
        let again = b.store.claim_cell("c", 60_000).unwrap();
        assert!(again.is_some(), "released cell must be claimable again");
    }

    #[test]
    fn cell_outcomes_publish_atomically_and_round_trip() {
        let root = fresh_root("outcomes");
        let f = fp(b"o");
        let opened = RunStore::open_shared(&root, &f, "{}").unwrap();
        assert!(!opened.store.cell_completed("c"));
        assert_eq!(opened.store.load_cell_outcome("c").unwrap(), None);
        opened
            .store
            .save_cell_outcome("c", "{\"robustness\": [0.5]}")
            .unwrap();
        assert!(opened.store.cell_completed("c"));
        assert_eq!(
            opened.store.load_cell_outcome("c").unwrap().as_deref(),
            Some("{\"robustness\": [0.5]}")
        );
        // The journal recorded the lease-free completion.
        let events = crate::journal::read_events(opened.store.journal_path()).unwrap();
        assert!(events.contains(&Event::CellCompleted {
            cell: "c".into(),
            pid: std::process::id(),
        }));
    }

    #[test]
    fn damaged_cell_checkpoint_is_a_typed_error() {
        let root = fresh_root("damaged");
        let f = fp(b"d");
        let opened = RunStore::open(&root, &f, "{}", false).unwrap();
        opened
            .store
            .save_trained(
                "c1",
                &sample_params(),
                &CellMeta {
                    clean_accuracy: 0.5,
                    learnable: true,
                },
            )
            .unwrap();
        let params_path = opened.store.dir().join("cells/c1/params.bin");
        let mut bytes = fs::read(&params_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&params_path, bytes).unwrap();
        assert!(matches!(
            opened.store.load_trained("c1"),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }
}
