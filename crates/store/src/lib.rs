//! Durable experiment state for the exploration pipeline.
//!
//! The `--full` `(V_th, T)` grid is the most expensive computation in this
//! workspace: one SNN training per grid cell *before* the security study
//! even starts. This crate makes that work durable, resumable, and
//! cacheable:
//!
//! * [`mod@format`] — a versioned, checksummed binary serialization for
//!   [`Tensor`](tensor::Tensor) and [`Params`](nn::Params) checkpoints.
//!   Loads reject truncated, corrupted, or version-mismatched files with
//!   typed [`StoreError`]s; they never panic.
//! * [`fingerprint`] — a deterministic run fingerprint hashed over the
//!   experiment configuration, grid, ε sweep, and format version, so a
//!   config change can never silently reuse stale checkpoints.
//! * [`journal`] — an append-only JSONL event log (`events.jsonl`) giving
//!   basic observability into long runs: which cells trained, which were
//!   served from cache, and how long each step took.
//! * [`mod@lock`] — the single-writer [`RunLock`]: a create-exclusive
//!   sibling lock file (`run-<fingerprint>.lock`) with a pid + fingerprint
//!   payload and stale-lock reclamation, so a long-lived server and a
//!   concurrent batch run can never both write one run directory.
//! * [`mod@lease`] — per-cell [`CellLease`]s for *distributed* grid runs:
//!   N worker processes share one run directory without the whole-run
//!   lock, excluding each other per cell through create-exclusive lease
//!   files with pid + deadline payloads, heartbeats, and stale reclaim
//!   (dead pid, expired deadline, torn payload).
//! * [`run`] — the [`RunStore`] handle tying it together: one directory per
//!   fingerprint holding a manifest, per-cell training checkpoints, a
//!   *separate* per-(cell, ε) attack cache (so extending the ε sweep reuses
//!   every trained model), and per-cell `outcome.json` artifacts that a
//!   reducer merges into the grid result.
//!
//! # Run directory layout
//!
//! ```text
//! <out-dir>/runs/run-<fingerprint>.lock   single-writer lock (pid + fingerprint)
//! <out-dir>/runs/run-<fingerprint>.leases/
//!   <cell>.lease             held grid-cell lease (pid + deadline)
//! <out-dir>/runs/run-<fingerprint>/
//!   manifest.json            what this run is (config, grid, ε sweep)
//!   events.jsonl             append-only journal, one JSON event per line
//!   cells/<cell>/train.bin   training summary (clean accuracy, learnability)
//!   cells/<cell>/params.bin  trained weights (format::write_params)
//!   cells/<cell>/attacks/<ε>.bin   one cached robustness value per budget
//!   cells/<cell>/outcome.json      completed-cell artifact (reducer input)
//! ```
//!
//! # Example
//!
//! ```
//! use store::{CellMeta, Fingerprint, RunStore};
//!
//! let root = std::env::temp_dir().join("store_doc_example");
//! let fp = Fingerprint::builder().section("config", b"demo").finish();
//! let opened = RunStore::open(&root, &fp, "{\"demo\":true}", false).unwrap();
//! let store = opened.store;
//! assert!(!opened.resumed);
//!
//! let mut params = nn::Params::new();
//! params.register("w", tensor::Tensor::ones(&[2, 2]));
//! let meta = CellMeta { clean_accuracy: 0.9, learnable: true };
//! store.save_trained("v1-t4", &params, &meta).unwrap();
//! let (back, m) = store.load_trained("v1-t4").unwrap().unwrap();
//! assert_eq!(back.num_scalars(), 4);
//! assert_eq!(m, meta);
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod fingerprint;
pub mod format;
pub mod journal;
pub mod lease;
pub mod lock;
pub mod run;

pub use error::StoreError;
pub use fingerprint::Fingerprint;
pub use format::FORMAT_VERSION;
pub use journal::Event;
pub use lease::{CellLease, Claim, LeasePayload, ReclaimReason};
pub use lock::{LockPayload, RunLock};
pub use run::{CellMeta, OpenedRun, RunStore};
