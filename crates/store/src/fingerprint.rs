//! Deterministic run fingerprints.
//!
//! A run directory is keyed by a fingerprint hashed over *everything that
//! determines its results*: the experiment configuration, the grid, the ε
//! sweep, and the checkpoint format version. Two runs share a directory —
//! and therefore checkpoints — only when every section is byte-identical,
//! so a config change can never silently reuse stale state, and a format
//! bump invalidates all prior runs at once.

use std::fmt;

use crate::format::{fnv1a, FORMAT_VERSION, MAGIC};

/// A 64-bit fingerprint of a run's defining inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// Starts building a fingerprint; the format version and magic are
    /// always mixed in first.
    pub fn builder() -> FingerprintBuilder {
        let mut seed = Vec::with_capacity(6);
        seed.extend_from_slice(&MAGIC);
        seed.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        FingerprintBuilder { hash: fnv1a(&seed) }
    }

    /// The fingerprint as a fixed-width 16-digit hex string — the run
    /// directory name component.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Accumulates named sections into a [`Fingerprint`].
///
/// Section names participate in the hash (with length prefixes), so moving
/// bytes between sections or reordering them changes the result.
#[derive(Debug, Clone)]
pub struct FingerprintBuilder {
    hash: u64,
}

impl FingerprintBuilder {
    /// Mixes one named section into the fingerprint.
    pub fn section(mut self, name: &str, bytes: &[u8]) -> Self {
        let mut chunk = Vec::with_capacity(16 + name.len() + bytes.len());
        chunk.extend_from_slice(&self.hash.to_le_bytes());
        chunk.extend_from_slice(&(name.len() as u64).to_le_bytes());
        chunk.extend_from_slice(name.as_bytes());
        chunk.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        chunk.extend_from_slice(bytes);
        self.hash = fnv1a(&chunk);
        self
    }

    /// Finishes the accumulation.
    pub fn finish(self) -> Fingerprint {
        Fingerprint(self.hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sections_give_identical_fingerprints() {
        let a = Fingerprint::builder()
            .section("config", b"abc")
            .section("grid", b"xyz")
            .finish();
        let b = Fingerprint::builder()
            .section("config", b"abc")
            .section("grid", b"xyz")
            .finish();
        assert_eq!(a, b);
        assert_eq!(a.hex().len(), 16);
    }

    #[test]
    fn any_difference_changes_the_fingerprint() {
        let base = Fingerprint::builder().section("config", b"abc").finish();
        let content = Fingerprint::builder().section("config", b"abd").finish();
        let name = Fingerprint::builder().section("confiG", b"abc").finish();
        assert_ne!(base, content);
        assert_ne!(base, name);
    }

    #[test]
    fn section_boundaries_matter() {
        // Moving a byte across the section boundary must not collide.
        let a = Fingerprint::builder()
            .section("x", b"ab")
            .section("y", b"c")
            .finish();
        let b = Fingerprint::builder()
            .section("x", b"a")
            .section("y", b"bc")
            .finish();
        assert_ne!(a, b);
    }

    #[test]
    fn display_matches_hex() {
        let fp = Fingerprint::builder().section("s", b"1").finish();
        assert_eq!(fp.to_string(), fp.hex());
    }
}
