//! Per-cell lease files — the coordination primitive of distributed grid
//! runs.
//!
//! A distributed grid run has N independent worker processes cooperating on
//! one run directory. The whole-run [`RunLock`](crate::RunLock) would
//! serialise them down to one; instead each *cell* is guarded by its own
//! lease file, so workers exclude each other per cell while the directory
//! as a whole stays multi-writer.
//!
//! Like the run lock, lease files live in a *sibling* of the run directory
//! (`run-<fingerprint>.leases/<cell>.lease` next to `run-<fingerprint>/`):
//! a fresh (non-resume) exclusive open clears the run directory with
//! `remove_dir_all`, which must never delete the files proving a worker is
//! still alive. Acquisition is a `create_new` (O_EXCL), atomic everywhere.
//!
//! The payload is one JSON object with the holder's pid and a wall-clock
//! *deadline*. A lease is **stale** — reclaimable by any other worker —
//! when any of these holds:
//!
//! * the recorded pid is dead (the worker was SIGKILLed),
//! * the deadline has passed (the worker hung, or lives on a machine where
//!   pid liveness cannot be probed),
//! * the payload is torn/unparseable (the worker died inside its first
//!   write).
//!
//! A live worker therefore *heartbeats*: it periodically rewrites the
//! payload (atomically, via temp file + rename) with a pushed-out deadline.
//! A worker that loses its lease to reclaim (it stalled past its own
//! deadline) learns so at the next heartbeat and must abandon the cell.

use std::fmt;
use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::error::StoreError;
use crate::lock::pid_alive;

/// Suffix appended to the run-directory name to form its lease directory.
pub const LEASES_EXTENSION: &str = "leases";

/// File extension of one cell's lease inside the lease directory.
pub const LEASE_FILE_EXTENSION: &str = "lease";

/// The JSON payload written into a lease file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeasePayload {
    /// Pid of the worker holding the cell.
    pub pid: u32,
    /// Process-local acquisition counter. Ownership checks compare `(pid,
    /// nonce)`, not pid alone: in-process workers (threads, tests) share a
    /// pid, and after an expired-deadline reclaim the original holder must
    /// not mistake the reclaimer's lease for its own.
    pub nonce: u64,
    /// The cell key the lease guards (redundant with the file name, but
    /// makes `cat run-*.leases/*` self-describing during an incident).
    pub cell: String,
    /// Wall-clock lease expiry, in milliseconds since the Unix epoch. Past
    /// this instant the lease counts as stale even if the pid still runs.
    pub deadline_millis: u64,
}

/// Monotone per-process acquisition counter feeding [`LeasePayload::nonce`].
static NEXT_NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Why a stale lease was reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReclaimReason {
    /// The recorded pid no longer runs.
    DeadPid,
    /// The deadline passed without a heartbeat.
    Expired,
    /// The payload was unreadable — the holder died mid-write.
    Torn,
}

impl fmt::Display for ReclaimReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReclaimReason::DeadPid => "dead pid",
            ReclaimReason::Expired => "expired deadline",
            ReclaimReason::Torn => "torn payload",
        })
    }
}

/// A reclaim that happened on the way to an acquisition, for journaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reclaim {
    /// Pid recorded in the stale lease (0 when the payload was torn).
    pub old_pid: u32,
    /// Why the stale lease did not count as held.
    pub reason: ReclaimReason,
}

/// The outcome of [`CellLease::acquire`].
#[derive(Debug)]
pub enum Claim {
    /// The cell is now ours.
    Acquired {
        /// The live lease; drop or [`CellLease::release`] to give it back.
        lease: CellLease,
        /// The stale lease that was reclaimed on the way, if any.
        reclaimed: Option<Reclaim>,
    },
    /// Another live worker holds the cell.
    Busy {
        /// Pid of the holder.
        pid: u32,
        /// The holder's current deadline (epoch milliseconds).
        deadline_millis: u64,
    },
}

/// An exclusive hold on one grid cell. Dropping the guard releases the
/// lease (removes the file, if still owned); a SIGKILLed worker leaves a
/// stale file that the next claimant reclaims.
#[derive(Debug)]
pub struct CellLease {
    path: PathBuf,
    payload: LeasePayload,
}

/// The lease directory guarding `run_dir`'s cells (a sibling, never inside
/// it — see the module docs).
pub fn leases_dir(run_dir: &Path) -> PathBuf {
    let mut name = run_dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "run".to_string());
    name.push('.');
    name.push_str(LEASES_EXTENSION);
    match run_dir.parent() {
        Some(parent) => parent.join(name),
        None => PathBuf::from(name),
    }
}

/// The lease-file path of `cell` under `run_dir`.
pub fn lease_path(run_dir: &Path, cell: &str) -> PathBuf {
    leases_dir(run_dir).join(format!("{cell}.{LEASE_FILE_EXTENSION}"))
}

/// Milliseconds since the Unix epoch, for lease deadlines.
///
/// Deadlines are pure coordination state: they decide *who computes*, never
/// *what is computed*, so reading the clock here cannot leak into results.
pub fn now_millis() -> u64 {
    // armor-lint: allow(wallclock-purity, transitive-determinism) -- lease deadlines are liveness metadata (who may compute a cell), journaled like the millis duration fields; results never flow through them
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Whether an existing payload still counts as *held* at `now`.
fn held(payload: &LeasePayload, now: u64) -> bool {
    pid_alive(payload.pid) && payload.deadline_millis >= now
}

/// Classifies a stale payload for the reclaim journal entry.
fn stale_reason(payload: &Option<LeasePayload>, now: u64) -> Reclaim {
    match payload {
        None => Reclaim {
            old_pid: 0,
            reason: ReclaimReason::Torn,
        },
        Some(p) if !pid_alive(p.pid) => Reclaim {
            old_pid: p.pid,
            reason: ReclaimReason::DeadPid,
        },
        Some(p) => {
            debug_assert!(p.deadline_millis < now);
            Reclaim {
                old_pid: p.pid,
                reason: ReclaimReason::Expired,
            }
        }
    }
}

/// The payload recorded in an existing lease file, or `None` when it is
/// unreadable/torn (which claimants treat as stale).
fn read_payload(path: &Path) -> Option<LeasePayload> {
    let text = fs::read_to_string(path).ok()?;
    serde_json::from_str(text.trim()).ok()
}

fn serialize_payload(payload: &LeasePayload) -> Result<String, StoreError> {
    serde_json::to_string(payload)
        .map_err(|e| StoreError::Corrupt(format!("cannot serialise lease payload: {e}")))
}

impl CellLease {
    /// Tries to claim `cell` under `run_dir` for `ttl_millis` milliseconds.
    ///
    /// A present lease file that is stale (dead pid, expired deadline, or
    /// torn payload) is reclaimed and re-acquired. Acquisition retries a
    /// few times so losing the re-create race to another claimant degrades
    /// into a normal [`Claim::Busy`] answer, never a double-holder.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures.
    pub fn acquire(run_dir: &Path, cell: &str, ttl_millis: u64) -> Result<Claim, StoreError> {
        let path = lease_path(run_dir, cell);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut reclaimed: Option<Reclaim> = None;
        let mut last_busy = (0u32, 0u64);
        for _attempt in 0..3 {
            let payload = LeasePayload {
                pid: std::process::id(),
                nonce: NEXT_NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1,
                cell: cell.to_string(),
                deadline_millis: now_millis().saturating_add(ttl_millis),
            };
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    let text = serialize_payload(&payload)?;
                    file.write_all(text.as_bytes())?;
                    file.write_all(b"\n")?;
                    return Ok(Claim::Acquired {
                        lease: Self { path, payload },
                        reclaimed,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let existing = read_payload(&path);
                    let now = now_millis();
                    match &existing {
                        Some(p) if held(p, now) => {
                            return Ok(Claim::Busy {
                                pid: p.pid,
                                deadline_millis: p.deadline_millis,
                            });
                        }
                        _ => {
                            // Stale: reclaim and retry. Another claimant may
                            // win the re-create race; the loop then reads
                            // *its* (live) payload and reports Busy.
                            reclaimed = Some(stale_reason(&existing, now));
                            last_busy = existing
                                .map(|p| (p.pid, p.deadline_millis))
                                .unwrap_or_default();
                            match fs::remove_file(&path) {
                                Ok(()) => {}
                                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                                Err(e) => return Err(e.into()),
                            }
                        }
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        // Three stale-reclaim rounds in a row: heavy churn. Answer Busy and
        // let the worker try another cell.
        Ok(Claim::Busy {
            pid: last_busy.0,
            deadline_millis: last_busy.1,
        })
    }

    /// Pushes the deadline `ttl_millis` past now, atomically (temp file +
    /// rename), after verifying the lease on disk is still ours.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::LeaseLost`] when the on-disk lease is gone or
    /// carries someone else's pid — we stalled past our own deadline and
    /// were reclaimed; the caller must abandon the cell. Returns
    /// [`StoreError::Io`] on filesystem failures.
    pub fn heartbeat(&mut self, ttl_millis: u64) -> Result<(), StoreError> {
        match read_payload(&self.path) {
            Some(p) if p.pid == self.payload.pid && p.nonce == self.payload.nonce => {}
            other => {
                return Err(StoreError::LeaseLost {
                    cell: self.payload.cell.clone(),
                    pid: other.map(|p| p.pid).unwrap_or(0),
                });
            }
        }
        self.payload.deadline_millis = now_millis().saturating_add(ttl_millis);
        let text = serialize_payload(&self.payload)?;
        // Pid-suffixed temp name: two processes renaming over the same
        // lease concurrently (a reclaim race) must not share a temp file.
        let mut tmp = self.path.as_os_str().to_owned();
        tmp.push(format!(".hb{}", self.payload.pid));
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, format!("{text}\n"))?;
        fs::rename(&tmp, &self.path)?;
        Ok(())
    }

    /// The payload this lease wrote (own pid, cell, current deadline).
    pub fn payload(&self) -> &LeasePayload {
        &self.payload
    }

    /// The cell key this lease guards.
    pub fn cell(&self) -> &str {
        &self.payload.cell
    }

    /// The lease file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Releases the lease (removes the file). Equivalent to dropping, but
    /// reads better at call sites that hand the cell back deliberately.
    pub fn release(self) {}
}

impl Drop for CellLease {
    fn drop(&mut self) {
        // Only remove the file while it is still ours: after a reclaim the
        // path holds another worker's live lease, which a blind unlink
        // would silently revoke.
        match read_payload(&self.path) {
            Some(p) if p.pid == self.payload.pid && p.nonce == self.payload.nonce => {
                // Best-effort: a failed removal leaves a stale file that
                // the next claimant reclaims via the dead-pid or expired-
                // deadline path.
                let _ = fs::remove_file(&self.path);
            }
            _ => {}
        }
    }
}

/// Every lease under `run_dir` that is currently *held* (live pid and
/// unexpired deadline), sorted by cell key for deterministic reporting.
/// Used by the exclusive open path: a run directory with held leases has
/// live workers and must not be cleared or exclusively locked.
///
/// # Errors
///
/// Returns [`StoreError::Io`] if the lease directory exists but cannot be
/// read.
pub fn held_leases(run_dir: &Path) -> Result<Vec<LeasePayload>, StoreError> {
    let dir = leases_dir(run_dir);
    let entries = match fs::read_dir(&dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let now = now_millis();
    let mut held_payloads = Vec::new();
    for entry in entries {
        let path = entry?.path();
        if path.extension().map(|e| e == LEASE_FILE_EXTENSION) != Some(true) {
            continue;
        }
        if let Some(p) = read_payload(&path) {
            if held(&p, now) {
                held_payloads.push(p);
            }
        }
    }
    held_payloads.sort_by(|a, b| a.cell.cmp(&b.cell));
    Ok(held_payloads)
}

/// Removes the whole lease directory of `run_dir`, stale leases and all.
/// Called by a fresh (non-resume) exclusive open after verifying nothing
/// is held.
///
/// # Errors
///
/// Returns [`StoreError::Io`] if the directory exists but cannot be
/// removed.
pub fn clear_leases(run_dir: &Path) -> Result<(), StoreError> {
    match fs::remove_dir_all(leases_dir(run_dir)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_run_dir(name: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("store_lease_tests_{name}"));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        root.join("run-abc")
    }

    fn acquire_ok(dir: &Path, cell: &str, ttl: u64) -> CellLease {
        match CellLease::acquire(dir, cell, ttl).unwrap() {
            Claim::Acquired { lease, .. } => lease,
            Claim::Busy { pid, .. } => panic!("expected to acquire {cell}, busy with pid {pid}"),
        }
    }

    #[test]
    fn acquire_release_round_trip() {
        let dir = fresh_run_dir("roundtrip");
        let lease = acquire_ok(&dir, "v1-t4", 60_000);
        assert!(lease.path().exists());
        assert_eq!(lease.payload().pid, std::process::id());
        assert_eq!(lease.cell(), "v1-t4");
        let path = lease.path().to_path_buf();
        lease.release();
        assert!(!path.exists(), "release must remove the lease file");
    }

    #[test]
    fn second_claim_of_a_held_cell_is_busy() {
        let dir = fresh_run_dir("busy");
        let held = acquire_ok(&dir, "c", 60_000);
        match CellLease::acquire(&dir, "c", 60_000).unwrap() {
            Claim::Busy {
                pid,
                deadline_millis,
            } => {
                assert_eq!(pid, std::process::id());
                assert_eq!(deadline_millis, held.payload().deadline_millis);
            }
            Claim::Acquired { .. } => panic!("double-claimed a held lease"),
        }
    }

    #[test]
    fn distinct_cells_are_independent() {
        let dir = fresh_run_dir("independent");
        let _a = acquire_ok(&dir, "a", 60_000);
        let _b = acquire_ok(&dir, "b", 60_000);
    }

    #[test]
    fn dead_pid_lease_is_reclaimed() {
        if !Path::new("/proc").is_dir() {
            return; // liveness cannot be probed; the conservative branch keeps it held
        }
        let dir = fresh_run_dir("dead_pid");
        let path = lease_path(&dir, "c");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(
            &path,
            format!(
                "{{\"pid\": 4294967295, \"nonce\": 1, \"cell\": \"c\", \"deadline_millis\": {}}}\n",
                now_millis() + 3_600_000
            ),
        )
        .unwrap();
        match CellLease::acquire(&dir, "c", 60_000).unwrap() {
            Claim::Acquired { reclaimed, .. } => {
                let r = reclaimed.expect("the stale lease was reclaimed");
                assert_eq!(r.old_pid, u32::MAX);
                assert_eq!(r.reason, ReclaimReason::DeadPid);
            }
            Claim::Busy { .. } => panic!("a dead pid's lease must be reclaimable"),
        }
    }

    #[test]
    fn expired_deadline_is_reclaimed_even_for_a_live_pid() {
        let dir = fresh_run_dir("expired");
        // Our own (alive) pid, but a deadline in the past: the holder
        // stalled past its own lease.
        let stale = acquire_ok(&dir, "c", 0);
        std::mem::forget(stale); // simulate a crash: no Drop, file stays
        std::thread::sleep(std::time::Duration::from_millis(5));
        match CellLease::acquire(&dir, "c", 60_000).unwrap() {
            Claim::Acquired { reclaimed, .. } => {
                let r = reclaimed.expect("the expired lease was reclaimed");
                assert_eq!(r.old_pid, std::process::id());
                assert_eq!(r.reason, ReclaimReason::Expired);
            }
            Claim::Busy { .. } => panic!("an expired lease must be reclaimable"),
        }
    }

    #[test]
    fn torn_payload_is_reclaimed() {
        let dir = fresh_run_dir("torn");
        let path = lease_path(&dir, "c");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, "{\"pi").unwrap();
        match CellLease::acquire(&dir, "c", 60_000).unwrap() {
            Claim::Acquired { reclaimed, .. } => {
                let r = reclaimed.expect("the torn lease was reclaimed");
                assert_eq!(r.old_pid, 0);
                assert_eq!(r.reason, ReclaimReason::Torn);
            }
            Claim::Busy { .. } => panic!("a torn lease must be reclaimable"),
        }
    }

    #[test]
    fn heartbeat_extends_the_deadline() {
        let dir = fresh_run_dir("heartbeat");
        let mut lease = acquire_ok(&dir, "c", 1_000);
        let before = lease.payload().deadline_millis;
        lease.heartbeat(3_600_000).unwrap();
        assert!(lease.payload().deadline_millis > before);
        let on_disk = read_payload(lease.path()).unwrap();
        assert_eq!(on_disk.deadline_millis, lease.payload().deadline_millis);
    }

    #[test]
    fn heartbeat_after_reclaim_reports_the_loss() {
        let dir = fresh_run_dir("lost");
        let mut stale = acquire_ok(&dir, "c", 0);
        std::thread::sleep(std::time::Duration::from_millis(5));
        // Another worker reclaims the expired lease... (in-process it shares
        // our pid; the nonce is what tells the two acquisitions apart)
        let winner = acquire_ok(&dir, "c", 60_000);
        // ...which the stalled holder discovers at its next heartbeat.
        match stale.heartbeat(60_000) {
            Err(StoreError::LeaseLost { cell, pid }) => {
                assert_eq!(cell, "c");
                assert_eq!(pid, std::process::id(), "the in-process reclaimer");
            }
            other => panic!("expected LeaseLost, got {other:?}"),
        }
        // Dropping the loser must not revoke the winner's lease file.
        drop(stale);
        assert!(
            winner.path().exists(),
            "a lost lease's drop must not unlink the reclaimer's file"
        );
    }

    #[test]
    fn held_leases_reports_live_holders_only() {
        let dir = fresh_run_dir("held");
        assert!(held_leases(&dir).unwrap().is_empty());
        let _live = acquire_ok(&dir, "live", 60_000);
        let expired = acquire_ok(&dir, "expired", 0);
        std::mem::forget(expired);
        std::thread::sleep(std::time::Duration::from_millis(5));
        fs::write(lease_path(&dir, "torn"), "{\"pi").unwrap();
        let held = held_leases(&dir).unwrap();
        assert_eq!(held.len(), 1);
        assert_eq!(held.first().map(|p| p.cell.as_str()), Some("live"));
    }

    #[test]
    fn clear_leases_removes_the_sibling_directory() {
        let dir = fresh_run_dir("clear");
        let lease = acquire_ok(&dir, "c", 60_000);
        std::mem::forget(lease);
        assert!(leases_dir(&dir).is_dir());
        clear_leases(&dir).unwrap();
        assert!(!leases_dir(&dir).exists());
        clear_leases(&dir).unwrap(); // idempotent
    }

    #[test]
    fn lease_directory_is_a_sibling_of_the_run_directory() {
        let dir = PathBuf::from("/x/runs/run-12ab");
        assert_eq!(leases_dir(&dir), PathBuf::from("/x/runs/run-12ab.leases"));
        assert_eq!(
            lease_path(&dir, "v1-t4"),
            PathBuf::from("/x/runs/run-12ab.leases/v1-t4.lease")
        );
    }
}
