//! Seeded unsafe-provenance bugs: a raw pointer escaping its `unsafe`
//! block, a SAFETY comment too thin to name an invariant, and a
//! `#[target_feature]` kernel invoked without a CPU-detection guard.
//! The traps are the sanctioned shapes: reference-producing tails,
//! `from_raw_parts` handing back a safe slice, and detection-guarded
//! dispatch.

#[target_feature(enable = "avx2")]
unsafe fn kernel(x: &mut [f32]) {
    x[0] += 1.0;
}

/// BUG: the pointer outlives the unsafe block, so every later deref is an
/// unchecked use the block's SAFETY argument no longer covers.
fn escape(buf: &[f32]) -> *const f32 {
    // SAFETY: `buf` is non-empty, so its base pointer is valid here.
    let base = unsafe { buf.as_ptr() };
    base
}

/// BUG: "ok" names no invariant — the comment passes the line rule's
/// existence check but says nothing a reviewer can verify.
fn thin_comment(x: &mut [f32]) {
    // SAFETY: ok
    unsafe { *x.as_mut_ptr() = 0.0 };
}

/// BUG: calls the AVX2 kernel with no `is_x86_feature_detected!` in
/// sight — on a non-AVX2 host this is immediate undefined behaviour.
fn call_unguarded(x: &mut [f32]) {
    // SAFETY: callers promise to run this binary on AVX2 hosts only.
    unsafe { kernel(x) };
}

/// Trap: the sanctioned dispatch shape — the detection macro guards the
/// kernel call in the same function.
fn dispatch(x: &mut [f32]) {
    if is_x86_feature_detected!("avx2") {
        // SAFETY: the runtime check above proves AVX2 is available.
        unsafe { kernel(x) };
        return;
    }
    x[0] += 1.0;
}

/// Trap: the unsafe block's value is a *reference*, whose lifetime the
/// borrow checker tracks — nothing raw escapes.
fn reborrow(p: *const f32) -> f32 {
    // SAFETY: caller guarantees `p` points at a live, aligned f32.
    let r = unsafe { &*p };
    *r
}

/// Trap: `from_raw_parts` returns a safe slice; the raw parts stay inside.
fn view(p: *const f32, n: usize) -> f32 {
    // SAFETY: caller guarantees `p..p+n` is a live, aligned allocation.
    let s = unsafe { std::slice::from_raw_parts(p, n) };
    s[0]
}
