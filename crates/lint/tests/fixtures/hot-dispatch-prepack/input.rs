// Fixture: the worker-pool dispatch and prepack-lookup paths are hot —
// dispatch runs once per parallel helper entry and the cache lookup once
// per layer forward, both inside the SNN timestep loop. Marked with
// `// armor-lint: hot`, they must stay allocation-free; handing out a
// cached panel must be the `Arc::clone` refcount bump (a path call the
// lint sanctions), never a flagged deep `.clone()`.

use std::ops::Range;
use std::sync::Arc;

// armor-lint: hot
fn dispatch(pieces: usize, ranges: &[Range<usize>]) {
    // A dispatcher that materializes per-job bookkeeping allocates on
    // every kernel invocation of the timestep loop.
    let order: Vec<usize> = (0..pieces).collect();
    let snapshot = ranges.to_vec();
    let _ = (order, snapshot);
}

// armor-lint: hot
fn prepack_lookup(slots: &[Option<Arc<[f32]>>], id: usize) -> Option<Arc<[f32]>> {
    // The sanctioned idiom: share the cached panel by refcount.
    slots[id].as_ref().map(Arc::clone)
}

// armor-lint: hot
fn prepack_lookup_deep(slots: &[Option<Vec<f32>>], id: usize) -> Option<Vec<f32>> {
    // Deep-copying the panel on every forward defeats the cache.
    slots[id].clone()
}

fn build_panel(k: usize, n: usize) -> Vec<f32> {
    // The cold miss path builds the panel exactly once per weight
    // mutation; allocation is fine here.
    vec![0.0; k * n]
}
