// Fixture: every panic-family construct the rule must flag in artifact code.
// Linted under the virtual path `crates/store/src/input.rs`.

fn load(bytes: &[u8]) -> u8 {
    let first = bytes.first().unwrap();
    let second = bytes.get(1).expect("second byte");
    if *first == 0 {
        panic!("zero header");
    }
    if *second == 0 {
        todo!()
    }
    bytes[2]
}

fn indexing_variants(v: Vec<u32>, pairs: &[(u32, u32)]) -> u32 {
    let a = v[0];
    let b = pairs[1].0;
    a + b
}

fn not_flagged(bytes: &[u8]) -> Option<u8> {
    // Array types, slice patterns and attributes use brackets without
    // indexing; none of these may fire.
    let _buf: [u8; 4] = [0; 4];
    let [_x, _y] = [1, 2];
    bytes.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v = vec![1, 2, 3];
        assert_eq!(v[0], v.first().copied().unwrap());
    }
}
