// Fixture: the suppression grammar itself.
// Linted under the virtual path `crates/store/src/input.rs`.

fn justified_allows_silence_findings(v: &[u8]) -> u8 {
    // armor-lint: allow(no-panic-in-io) -- index bounded by the caller's length check
    let first = v[0];
    let second = v[1]; // armor-lint: allow(no-panic-in-io) -- same bound as above
    first + second
}

fn multi_rule_allow(v: &[u8]) -> u8 {
    // armor-lint: allow(no-panic-in-io, unordered-iteration) -- demo of the list form
    let byte = v[0];
    byte
}

fn bare_allow_reports_and_does_not_suppress(v: &[u8]) -> u8 {
    // armor-lint: allow(no-panic-in-io)
    v[0]
}

fn unknown_rule_reports(v: &[u8]) -> u8 {
    // armor-lint: allow(no-panics) -- rule id typo
    v[0]
}

fn typoed_directive_reports(v: &[u8]) -> u8 {
    // armor-lint: alow(no-panic-in-io) -- directive typo
    v[0]
}

fn allow_does_not_reach_two_lines_down(v: &[u8]) -> u8 {
    // armor-lint: allow(no-panic-in-io) -- covers the next line only
    let fine = v[0];
    let still_flagged = v[1];
    fine + still_flagged
}
