// Fixture: nondeterministic-iteration collections in artifact code.
// Linted under the virtual path `crates/store/src/input.rs`.

use std::collections::{BTreeMap, HashMap, HashSet};

fn count(keys: &[String]) -> HashMap<String, usize> {
    let mut seen: HashSet<String> = HashSet::new();
    for k in keys {
        seen.insert(k.clone());
    }
    HashMap::new()
}

fn sorted_is_fine(keys: &[String]) -> BTreeMap<String, usize> {
    // BTreeMap iterates in key order, so artifacts stay deterministic.
    let mut out = BTreeMap::new();
    for (i, k) in keys.iter().enumerate() {
        out.insert(k.clone(), i);
    }
    out
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_use_hash_maps() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.is_empty());
    }
}
