// Fixture: `unsafe` blocks with and without safety comments. (The
// safety keyword is spelled out only in the compliant cases below, so
// this header cannot accidentally cover the violations.)
// Linted under the virtual path `crates/tensor/src/input.rs`.

unsafe fn raw_read(p: *const f32) -> f32 {
    *p
}

fn undocumented(p: *const f32) -> f32 {
    unsafe { raw_read(p) }
}

fn documented(p: *const f32, len: usize, i: usize) -> f32 {
    assert!(i < len);
    // SAFETY: `i < len` is asserted above and `p` covers `len` elements.
    unsafe { raw_read(p.add(i)) }
}

fn documented_same_line(p: *const f32) -> f32 {
    /* SAFETY: caller contract — p is valid for reads. */
    unsafe { raw_read(p) }
}
