//! Seeded transitive-determinism bugs: a wall-clock reading two calls
//! away from a metrics counter, and an unordered map handed straight to a
//! JSON artifact writer. The line-local rules never see either — this
//! file is outside their scopes, and only the call graph connects the
//! source to the sink. The traps are the quarantined timing path, test
//! code, and a free function that merely *shares* a sink's name.

use std::collections::HashMap;
use std::time::Instant;

/// BUG: the elapsed time flows through `note_progress` into a
/// deterministic counter — two `--threads` settings produce different
/// metrics artifacts.
fn checkpoint_epoch(epoch: u32) {
    let started = Instant::now();
    run_epoch(epoch);
    note_progress(started.elapsed().as_millis() as u64);
}

fn note_progress(millis: u64) {
    obs::counter_add("train/epoch_millis", millis);
}

fn run_epoch(_epoch: u32) {}

/// BUG: a `HashMap`'s iteration order reaches a JSON artifact — byte
/// drift on every run.
fn export(scores: &HashMap<String, f32>) {
    save_json("scores.json", scores);
}

fn save_json(_path: &str, _scores: &HashMap<String, f32>) {}

/// Trap: the quarantined timing sink is not an artifact writer; clock
/// readings are *supposed* to end up there.
fn timed_forward() {
    let started = Instant::now();
    run_epoch(0);
    obs::timing_gauge_add("train/forward_nanos", started.elapsed().as_nanos() as u64);
}

/// Trap: free `log(…)` only shares a name with the journal's `log`
/// method; the sink match is method-position only, so this map never
/// "reaches a writer".
fn audit(counts: &HashMap<String, u64>) {
    log(counts.len());
}

fn log(_n: usize) {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trap: test code may time whatever it likes.
    #[test]
    fn bench_epoch() {
        let started = Instant::now();
        checkpoint_epoch(0);
        obs::counter_add("test/elapsed", started.elapsed().as_millis() as u64);
    }
}
