//! Seeded condvar-wait-loop bug: a `Condvar::wait` guarded by an `if`
//! instead of a `while` loop — a spurious wakeup or a stolen wakeup
//! (two waiters, one `notify_one`) sails straight past the predicate.
//! The traps are the correct loop forms and `process::Child::wait`,
//! which shares the method name but has no predicate to re-check.

use std::sync::PoisonError;

struct Queue {
    state: std::sync::Mutex<Vec<u64>>,
    available: std::sync::Condvar,
}

/// BUG: `if` checks the predicate once; after a spurious wakeup the
/// consumer proceeds against an empty queue.
fn take_once(q: &Queue) -> Option<u64> {
    let mut jobs = q.state.lock().unwrap_or_else(PoisonError::into_inner);
    if jobs.is_empty() {
        jobs = q.available.wait(jobs).unwrap_or_else(PoisonError::into_inner);
    }
    jobs.pop()
}

/// Trap: the canonical while-predicate loop.
fn take(q: &Queue) -> Option<u64> {
    let mut jobs = q.state.lock().unwrap_or_else(PoisonError::into_inner);
    while jobs.is_empty() {
        jobs = q.available.wait(jobs).unwrap_or_else(PoisonError::into_inner);
    }
    jobs.pop()
}

/// Trap: a bare `loop` re-checking the predicate also re-arms the wait.
fn take_timeout(q: &Queue) -> Option<u64> {
    let mut jobs = q.state.lock().unwrap_or_else(PoisonError::into_inner);
    loop {
        if let Some(job) = jobs.pop() {
            return Some(job);
        }
        let (guard, timed_out) = q
            .available
            .wait_timeout(jobs, std::time::Duration::from_millis(5))
            .unwrap_or_else(PoisonError::into_inner);
        jobs = guard;
        if timed_out.timed_out() {
            return None;
        }
    }
}

/// Trap: `Child::wait()` takes no guard — it is process reaping, not a
/// condition variable, and needs no loop.
fn reap(child: &mut std::process::Child) -> Option<std::process::ExitStatus> {
    match child.wait() {
        Ok(status) => Some(status),
        Err(_) => None,
    }
}
