// Fixture: false-positive traps. Every construct below LOOKS like a
// violation but sits in a string, comment, raw string, or test-only
// region — the expected diagnostic list is empty.
// Linted under the virtual path `crates/store/src/input.rs`.

//! Not real: x.unwrap() and panic!("boom") inside a doc comment.

/* Block comment with v[0], HashMap, Instant::now() — all inert. */

fn strings_hide_everything() -> String {
    let plain = "call .unwrap() then panic!(\"no\") and index v[0]";
    let raw = r#"HashMap::new() and Instant::now() and "v[1]""#;
    let nested = r##"even r#"x.expect("inner")"# stays quiet"##;
    format!("{plain}{raw}{nested}")
}

fn brackets_that_are_not_indexing(bytes: &[u8]) -> Option<[u8; 2]> {
    let _arr: [u8; 4] = [0, 1, 2, 3];
    let [_a, _b] = [1u8, 2u8];
    match bytes {
        [x, y, ..] => Some([*x, *y]),
        _ => None,
    }
}

fn char_literals_are_not_lifetimes() -> (char, char) {
    ('[', ']')
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn violations_in_tests_are_exempt() {
        let started = Instant::now();
        let mut m = HashMap::new();
        m.insert(1u32, started.elapsed().as_nanos());
        let v = vec![1, 2, 3];
        assert_eq!(v[0], *v.first().unwrap());
    }
}
