//! Seeded lock-order bugs: an ABBA acquisition cycle split across two
//! functions, a self-deadlocking re-acquisition, and blocking I/O under a
//! live guard — next to the false-positive traps the pass must not bite
//! on (consistent global order, `drop()` release, statement-scoped
//! temporary guards).

use std::sync::PoisonError;

struct Shared {
    admission: std::sync::Mutex<Vec<u64>>,
    replicas: std::sync::Mutex<Vec<u64>>,
    sink: std::sync::Mutex<std::fs::File>,
}

/// BUG: takes `admission` then `replicas`…
fn admit(s: &Shared) {
    let a = s.admission.lock().unwrap_or_else(PoisonError::into_inner);
    let r = s.replicas.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = (a.len(), r.len());
}

/// …while the drain path takes `replicas` then `admission`: ABBA.
fn drain(s: &Shared) {
    let r = s.replicas.lock().unwrap_or_else(PoisonError::into_inner);
    let a = s.admission.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = (r.len(), a.len());
}

/// BUG: re-acquires `admission` while already holding it — `Mutex` is not
/// reentrant, so this self-deadlocks at runtime.
fn requeue(s: &Shared) {
    let held = s.admission.lock().unwrap_or_else(PoisonError::into_inner);
    let again = s.admission.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = (held.len(), again.len());
}

/// BUG: flushes a file while the `sink` guard is live — every contender
/// stalls behind the disk.
fn persist(s: &Shared) {
    let mut file = s.sink.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = file.flush();
}

/// Trap: same two locks as `admit`, same order — a consistent global
/// order is exactly what the rule asks for.
fn consistent(s: &Shared) {
    let a = s.admission.lock().unwrap_or_else(PoisonError::into_inner);
    let r = s.replicas.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = (a.len(), r.len());
}

/// Trap: opposite order is fine because the first guard is dropped before
/// the second acquisition — no two locks are ever held together.
fn handoff(s: &Shared) {
    let r = s.replicas.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = r.len();
    drop(r);
    let a = s.admission.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = a.len();
}

/// Trap: the temporary guard dies at its statement's `;`, so the flush on
/// the next line runs lock-free.
fn peek_then_flush(s: &Shared, out: &mut impl std::io::Write) {
    s.admission
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
    let _ = out.flush();
}
