// Fixture: explicit-SIMD kernel idiom, `tensor::simd`-style — runtime
// feature dispatch into a `#[target_feature]` function, with hot-loop
// and safety-comment obligations. Compliant and violating forms are
// interleaved; the violations below never spell the safety keyword.
// Linted under the virtual path `crates/tensor/src/input.rs`.

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Violation: a `#[target_feature]` function is an `unsafe fn` and needs
/// a safety comment stating its CPU-feature precondition.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// armor-lint: hot
unsafe fn undocumented_lanes(x: &[f32], y: &mut [f32]) {
    let n = x.len().min(y.len());
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(x.as_ptr().add(i));
        _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_add_ps(v, v));
        i += 8;
    }
}

/// Compliant: precondition documented at the declaration — the comment
/// must sit *below* the attributes to stay within the lint's three-line
/// window around the `unsafe` keyword.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// armor-lint: hot
// SAFETY: caller must ensure AVX2 is available (checked at the dispatch
// site via `is_x86_feature_detected!`); slice bounds are re-checked here.
unsafe fn documented_lanes(x: &[f32], y: &mut [f32]) {
    let n = x.len().min(y.len());
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(x.as_ptr().add(i));
        _mm256_storeu_ps(y.as_mut_ptr().add(i), _mm256_mul_ps(v, v));
        i += 8;
    }
}

/// Violation: dispatching into the kernel without a safety comment.
#[cfg(target_arch = "x86_64")]
pub fn dispatch_undocumented(x: &[f32], y: &mut [f32]) {
    if is_x86_feature_detected!("avx2") {
        unsafe { documented_lanes(x, y) }
    }
}

/// Compliant dispatch: the feature check *is* the safety argument.
#[cfg(target_arch = "x86_64")]
pub fn dispatch_documented(x: &[f32], y: &mut [f32]) {
    if is_x86_feature_detected!("avx2") {
        // SAFETY: the AVX2 cpuid check above is the kernel's only
        // precondition.
        unsafe { documented_lanes(x, y) }
    }
}

/// Violation: a hot kernel (by `_into` suffix) allocating its scratch
/// per call instead of leasing it from the workspace arena.
pub fn gather_rows_into(out: &mut [f32], a: &[f32]) {
    let idx: Vec<u32> = (0..a.len() as u32).collect();
    for (&i, o) in idx.iter().zip(out.iter_mut()) {
        *o = a[i as usize];
    }
}

/// Compliant: scratch passed in, nothing allocated in the hot path.
pub fn gather_rows_reused_into(out: &mut [f32], a: &[f32], idx: &mut [u32]) {
    for (slot, i) in idx.iter_mut().zip(0..a.len() as u32) {
        *slot = i;
    }
    for (&i, o) in idx.iter().zip(out.iter_mut()) {
        *o = a[i as usize];
    }
}
