// Fixture: wall-clock sources in artifact-scoped code.
// Linted under the virtual path `crates/explore/src/input.rs`.

use std::time::{Instant, SystemTime};

fn fingerprint_run() -> u64 {
    let started = Instant::now();
    let _ = started;
    7
}

fn stamp() -> SystemTime {
    SystemTime::now()
}

fn journal_duration_is_justified() -> u64 {
    // armor-lint: allow(wallclock-purity) -- duration feeds the journal's millis field only
    let start = Instant::now();
    start.elapsed().as_millis() as u64
}

fn not_flagged() {
    // A comment mentioning Instant::now() must not fire, and neither may a
    // string: "Instant::now()".
    let _doc = "SystemTime is banned here";
}
