// Fixture: wall-clock sources inside metrics-payload code.
// Linted under the virtual path `crates/obs/src/input.rs` — the metrics
// layer is artifact-producing code, so a clock feeding a counter or a
// serialized registry is a determinism bug, exactly like one feeding a
// fingerprint.

use std::collections::HashMap;
use std::time::Instant;

struct Registry {
    counters: Vec<(String, u64)>,
}

fn record_epoch_duration(reg: &mut Registry) {
    // A duration flowing into a *deterministic* counter: flagged.
    let start = Instant::now();
    reg.counters
        .push(("train/epoch_nanos".into(), start.elapsed().as_nanos() as u64));
}

fn shard_by_hash() -> HashMap<String, u64> {
    // Nondeterministic iteration order inside a metrics payload: flagged.
    HashMap::new()
}

fn quarantined_timing_sink() -> u128 {
    // The sanctioned pattern: the one clock read whose output is confined
    // to the excluded "timing" section of metrics.json.
    // armor-lint: allow(wallclock-purity) -- the timing sink is the one quarantined wall-clock consumer; its output is confined to the excluded "timing" section of metrics.json
    let started = Instant::now();
    started.elapsed().as_nanos()
}

fn not_flagged() {
    // Mentions in comments and strings must stay quiet: Instant::now(),
    // HashMap.
    let _doc = "Instant::now() inside a string is fine";
}
