// Fixture: allocation inside hot functions (`*_into` names and
// `// armor-lint: hot` markers). Linted under the virtual path
// `crates/tensor/src/input.rs`.

fn conv_into(out: &mut [f32], x: &[f32]) {
    let scratch = Vec::new();
    let mut lut = Vec::with_capacity(16);
    let staged = vec![0.0f32; 8];
    let copy = x.to_vec();
    let dup = staged.clone();
    let total: Vec<f32> = x.iter().copied().collect();
    let _ = (scratch, lut, copy, dup, total, out);
}

// armor-lint: hot
fn steady_state(x: &[f32]) -> f32 {
    let v = x.to_vec();
    v.iter().sum()
}

fn cold_setup() -> Vec<f32> {
    // Setup code allocates freely; only hot functions are constrained.
    let mut v = Vec::with_capacity(64);
    v.push(1.0);
    v.clone()
}
