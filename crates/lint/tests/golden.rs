//! Golden tests for the fixture corpus.
//!
//! Each `tests/fixtures/<name>/` directory holds an `input.rs` that is
//! linted under a *virtual* workspace path (fixture files live under a
//! `tests/` component, which the real scope rules would exempt as test
//! code) and an `expected.txt` with the exact diagnostics, one per line.
//!
//! To regenerate the goldens after an intentional diagnostic change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p lint --test golden
//! ```
//!
//! then review the diff like any other code change.

use std::fs;
use std::path::{Path, PathBuf};

use lint::{lint_source, Config};

fn fixture_dir(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check_fixture(name: &str, virtual_path: &str) {
    let dir = fixture_dir(name);
    let src = fs::read_to_string(dir.join("input.rs")).expect("fixture input.rs");
    let diags = lint_source(virtual_path, &src, &Config::workspace_default());
    let actual: String = diags.iter().map(|d| format!("{d}\n")).collect();
    let golden_path = dir.join("expected.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&golden_path, &actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&golden_path).expect("fixture expected.txt");
    assert_eq!(
        actual, expected,
        "fixture `{name}` diverged from its golden file; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn no_panic_in_io_fixture() {
    check_fixture("no-panic-in-io", "crates/store/src/input.rs");
}

#[test]
fn wallclock_purity_fixture() {
    check_fixture("wallclock-purity", "crates/explore/src/input.rs");
}

#[test]
fn wallclock_metrics_fixture() {
    // The obs crate is in the wallclock-purity/unordered-iteration scopes:
    // a clock or hash map inside metrics-payload code is flagged, and the
    // timing sink's justified allow is the only sanctioned clock read.
    check_fixture("wallclock-metrics", "crates/obs/src/input.rs");
}

#[test]
fn unordered_iteration_fixture() {
    check_fixture("unordered-iteration", "crates/store/src/input.rs");
}

#[test]
fn no_alloc_in_hot_loop_fixture() {
    check_fixture("no-alloc-in-hot-loop", "crates/tensor/src/input.rs");
}

#[test]
fn hot_dispatch_prepack_fixture() {
    // The pool-dispatch and prepack-lookup paths (PR 8) sit inside the
    // timestep loop: `// armor-lint: hot` keeps them allocation-free,
    // while `Arc::clone` handle hand-outs and cold miss-path panel
    // builds stay sanctioned.
    check_fixture("hot-dispatch-prepack", "crates/tensor/src/input.rs");
}

#[test]
fn unsafe_needs_safety_comment_fixture() {
    check_fixture("unsafe-needs-safety-comment", "crates/tensor/src/input.rs");
}

#[test]
fn simd_kernel_fixture() {
    // The `tensor::simd` idiom: `#[target_feature]` kernels and their
    // runtime-dispatch sites need SAFETY comments, and hot gather loops
    // must lease scratch from the workspace instead of allocating.
    check_fixture("simd-kernel", "crates/tensor/src/input.rs");
}

#[test]
fn lock_cycle_fixture() {
    // The serve batcher/worker shape: an ABBA cycle, a non-reentrant
    // re-acquisition, and I/O under a guard are seeded bugs; consistent
    // ordering, `drop()` hand-offs, and statement-scoped temporaries are
    // the traps that must stay quiet.
    check_fixture("lock-cycle", "crates/serve/src/input.rs");
}

#[test]
fn bare_condvar_wait_fixture() {
    check_fixture("bare-condvar-wait", "crates/serve/src/input.rs");
}

#[test]
fn escaping_raw_pointer_fixture() {
    // The tensor::simd provenance contract: pointers stay inside their
    // unsafe block, SAFETY comments name an invariant, and
    // `#[target_feature]` kernels are reached only through detection
    // guards. Reference tails and `from_raw_parts` views are the traps.
    check_fixture("escaping-raw-pointer", "crates/tensor/src/input.rs");
}

#[test]
fn transitive_wallclock_fixture() {
    // Outside the line-local wallclock/unordered scopes on purpose: only
    // the call-graph pass can connect these sources to their writers.
    check_fixture("transitive-wallclock", "crates/nn/src/input.rs");
}

#[test]
fn traps_fixture_is_all_quiet() {
    let dir = fixture_dir("traps");
    let src = fs::read_to_string(dir.join("input.rs")).expect("fixture input.rs");
    let diags = lint_source(
        "crates/store/src/input.rs",
        &src,
        &Config::workspace_default(),
    );
    assert!(
        diags.is_empty(),
        "every construct in the traps fixture is a false-positive bait and \
         must stay quiet, got: {diags:#?}"
    );
    check_fixture("traps", "crates/store/src/input.rs");
}

#[test]
fn suppression_fixture() {
    check_fixture("suppression", "crates/store/src/input.rs");
}

/// The merge gate itself: the workspace the lint crate ships in must be
/// lint-clean under the default configuration.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = lint::lint_workspace(&root, &Config::workspace_default()).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "the workspace must merge lint-clean, got:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
