//! The `armor-lint` comment-directive grammar.
//!
//! ```text
//! // armor-lint: allow(<rule>[, <rule>…]) -- <justification>
//! // armor-lint: hot
//! ```
//!
//! An allow silences matching findings on its own line and on the line
//! directly below it — trailing and preceding placement both work. The
//! justification is mandatory: a bare `allow(...)` is itself a diagnostic
//! ([`crate::config::BARE_ALLOW`]), as is an unknown rule id or an
//! unparseable directive, so a typo can never silently disable a rule.

use crate::config;
use crate::diag::Diagnostic;
use crate::lexer::Comment;

/// One parsed `allow` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule ids being allowed.
    pub rules: Vec<String>,
    /// Line of the directive comment.
    pub line: u32,
}

/// All directives of one file, plus the diagnostics the directives
/// themselves produced.
#[derive(Debug, Default)]
pub struct Directives {
    /// Parsed, justified allows.
    pub allows: Vec<Allow>,
    /// Lines carrying a `// armor-lint: hot` marker.
    pub hot_lines: Vec<u32>,
    /// Lines of comments containing `SAFETY:` (for the unsafe rule; for a
    /// block comment every spanned line counts).
    pub safety_lines: Vec<u32>,
    /// Grammar violations: bare allows, unknown rules, unparseable
    /// directives.
    pub diags: Vec<Diagnostic>,
}

impl Directives {
    /// `true` when a justified allow for `rule` covers `line`.
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == rule))
    }

    /// `true` when a `SAFETY:` comment sits on `line` or within the three
    /// lines above it.
    pub fn has_safety_comment(&self, line: u32) -> bool {
        self.safety_lines
            .iter()
            .any(|&s| s <= line && line - s <= 3)
    }
}

/// Extracts every directive from `comments`. `path` anchors the grammar
/// diagnostics.
pub fn parse(path: &str, comments: &[Comment]) -> Directives {
    let mut out = Directives::default();
    for c in comments {
        // `SAFETY:` anywhere in a comment qualifies; credit every line the
        // comment spans so multi-line block comments work.
        if c.text.contains("SAFETY:") {
            out.safety_lines.extend(c.line..=c.end_line);
        }
        // A directive must *be* the comment, not be quoted inside one: the
        // body of a plain `//` (or block) comment, starting with the
        // `armor-lint:` key. Doc comments (`///`, `//!`) are prose — a
        // mention of the grammar there must not parse as a directive.
        let stripped = match c.text.strip_prefix("//") {
            Some(rest) if rest.starts_with('/') || rest.starts_with('!') => continue,
            Some(rest) => rest.trim(),
            None => c.text.trim(),
        };
        let Some(body) = stripped.strip_prefix("armor-lint:") else {
            continue;
        };
        let body = body.trim();
        if body == "hot" {
            out.hot_lines.push(c.line);
            continue;
        }
        if let Some(rest) = body.strip_prefix("allow") {
            let rest = rest.trim_start();
            if let Some((inside, after)) = rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
                let rules: Vec<String> = inside
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect();
                let mut ok = !rules.is_empty();
                for r in &rules {
                    if !config::RULES.contains(&r.as_str()) {
                        out.diags.push(Diagnostic {
                            path: path.to_string(),
                            line: c.line,
                            col: c.col,
                            rule: config::UNKNOWN_RULE,
                            message: format!("unknown rule `{r}` in armor-lint allow"),
                        });
                        ok = false;
                    }
                }
                let justification = after
                    .trim_start()
                    .strip_prefix("--")
                    .map(str::trim)
                    .unwrap_or("");
                if justification.is_empty() {
                    out.diags.push(Diagnostic {
                        path: path.to_string(),
                        line: c.line,
                        col: c.col,
                        rule: config::BARE_ALLOW,
                        message: format!(
                            "suppression without justification: write `armor-lint: \
                             allow({}) -- <why this is sound>`",
                            rules.join(", ")
                        ),
                    });
                    ok = false;
                }
                if ok {
                    out.allows.push(Allow {
                        rules,
                        line: c.line,
                    });
                }
                continue;
            }
        }
        out.diags.push(Diagnostic {
            path: path.to_string(),
            line: c.line,
            col: c.col,
            rule: config::UNKNOWN_DIRECTIVE,
            message: format!(
                "unparseable armor-lint directive `{}`; expected `allow(<rule>) -- \
                 <justification>` or `hot`",
                body
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn directives(src: &str) -> Directives {
        parse("f.rs", &lex(src).comments)
    }

    #[test]
    fn justified_allow_parses_and_covers_next_line() {
        let d = directives("// armor-lint: allow(no-panic-in-io) -- checked above\nlet x = 1;");
        assert!(d.diags.is_empty());
        assert!(d.allows("no-panic-in-io", 1));
        assert!(d.allows("no-panic-in-io", 2));
        assert!(!d.allows("no-panic-in-io", 3));
        assert!(!d.allows("wallclock-purity", 2));
    }

    #[test]
    fn bare_allow_is_a_diagnostic() {
        let d = directives("// armor-lint: allow(no-panic-in-io)");
        assert_eq!(d.diags.len(), 1);
        assert_eq!(d.diags[0].rule, "bare-allow");
        assert!(!d.allows("no-panic-in-io", 1));
    }

    #[test]
    fn unknown_rule_is_a_diagnostic() {
        let d = directives("// armor-lint: allow(no-panics) -- sure");
        assert_eq!(d.diags.len(), 1);
        assert_eq!(d.diags[0].rule, "unknown-rule");
    }

    #[test]
    fn typoed_directive_is_a_diagnostic() {
        let d = directives("// armor-lint: alow(no-panic-in-io) -- oops");
        assert_eq!(d.diags.len(), 1);
        assert_eq!(d.diags[0].rule, "unknown-directive");
    }

    #[test]
    fn multi_rule_allow_and_hot_marker() {
        let d = directives(
            "// armor-lint: allow(no-panic-in-io, wallclock-purity) -- both fine\n\
             // armor-lint: hot\nfn go() {}",
        );
        assert!(d.diags.is_empty());
        assert!(d.allows("no-panic-in-io", 2));
        assert!(d.allows("wallclock-purity", 2));
        assert_eq!(d.hot_lines, [2]);
    }

    #[test]
    fn safety_comments_cover_nearby_lines() {
        let d = directives("// SAFETY: in-bounds by the loop guard\nx;\ny;\nz;\nw;");
        assert!(d.has_safety_comment(1));
        assert!(d.has_safety_comment(4));
        assert!(!d.has_safety_comment(5));
    }
}
