//! An approximate workspace call graph over the [`crate::ir`] functions.
//!
//! Call sites are recognised syntactically (`name(`, `recv.name(`,
//! `name!`) and resolved by simple name with a locality preference:
//! same file, then same crate, then anywhere in the workspace. Method
//! calls resolve by name alone — receiver types are unknown — so the
//! graph *over*-approximates: a reported path may not be feasible, but a
//! call the graph misses can only come from macro expansion, trait
//! dispatch through a differently-named impl, or function pointers.
//! DESIGN.md §15 spells out both directions of error.

use std::collections::{BTreeMap, VecDeque};

use crate::ir::WorkspaceIr;
use crate::lexer::TokKind;

/// Identifiers that look like calls syntactically but are control flow.
const NOT_CALLEES: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "in", "as", "fn", "let", "mut", "move",
    "break", "continue", "else", "unsafe", "ref", "box", "await", "yield", "dyn", "impl", "where",
    "use", "pub", "crate", "super", "true", "false", "struct", "enum", "union", "trait", "type",
    "static", "const", "extern",
];

/// Ubiquitous std method names that never resolve to workspace functions:
/// `x.max(1)` is `Ord::max`, not `Tensor::max`, in the overwhelming
/// majority of call sites, and resolving these by simple name wires every
/// arithmetic expression into the tensor reductions. The cost is a missed
/// edge when a workspace method genuinely shares one of these names —
/// DESIGN.md §15 lists this as the deliberate under-approximation.
const STD_COLLISIONS: &[&str] = &[
    "max",
    "min",
    "abs",
    "sqrt",
    "clamp",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "filter",
    "fold",
    "collect",
    "len",
    "is_empty",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "clone",
    "default",
    "new",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "as_slice",
    "write",
    "read",
    "send",
    "recv",
    "lock",
    "unwrap",
    "expect",
    "take",
    "drain",
    "extend",
    "clear",
    "sum",
    "join",
    "split",
    "eq",
    "cmp",
    "hash",
    "fmt",
    "to_string",
    "to_vec",
    "drop",
];

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee simple name (last path segment / method / macro name).
    pub name: String,
    /// `recv.name(…)` style.
    pub is_method: bool,
    /// `name!(…)` style.
    pub is_macro: bool,
    /// Line of the callee token.
    pub line: u32,
    /// Column of the callee token.
    pub col: u32,
}

/// The resolved graph: per-function call lists and fn→fn edges.
#[derive(Debug)]
pub struct CallGraph {
    /// Syntactic call sites per fn id, in source order.
    pub calls: Vec<Vec<Call>>,
    /// Resolved callee fn ids per fn id, sorted and deduplicated.
    pub edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph for a workspace IR.
    pub fn build(ws: &WorkspaceIr) -> Self {
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, f) in ws.fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(id);
        }
        let mut calls = Vec::with_capacity(ws.fns.len());
        let mut edges = Vec::with_capacity(ws.fns.len());
        for (id, f) in ws.fns.iter().enumerate() {
            let file = ws.file_of(id);
            let toks = &file.lexed.tokens;
            let mut cs: Vec<Call> = Vec::new();
            for i in f.body.clone() {
                if file.owner[i] != Some(id) {
                    continue;
                }
                let t = &toks[i];
                if t.kind != TokKind::Ident || NOT_CALLEES.contains(&t.text.as_str()) {
                    continue;
                }
                let prev = i.checked_sub(1).map(|p| &toks[p]);
                // `fn name(` is the definition, not a call.
                if prev.is_some_and(|p| p.kind == TokKind::Ident && p.text == "fn") {
                    continue;
                }
                let is_method = prev.is_some_and(|p| p.kind == TokKind::Punct('.'));
                match toks.get(i + 1).map(|n| n.kind) {
                    Some(TokKind::Punct('(')) => cs.push(Call {
                        name: t.text.clone(),
                        is_method,
                        is_macro: false,
                        line: t.line,
                        col: t.col,
                    }),
                    // `name!…` is a macro; `a != b` is not.
                    Some(TokKind::Punct('!'))
                        if toks.get(i + 2).map(|n| n.kind) != Some(TokKind::Punct('=')) =>
                    {
                        cs.push(Call {
                            name: t.text.clone(),
                            is_method: false,
                            is_macro: true,
                            line: t.line,
                            col: t.col,
                        });
                    }
                    _ => {}
                }
            }
            let mut es: Vec<usize> = Vec::new();
            for c in cs.iter().filter(|c| !c.is_macro) {
                // Std-prelude collisions (`.max(…)`, `.iter()`, free
                // `drop(x)`, …) never resolve: by-name matching would wire
                // them to unrelated workspace fns that share the name.
                if STD_COLLISIONS.contains(&c.name.as_str()) {
                    continue;
                }
                let Some(cands) = by_name.get(c.name.as_str()) else {
                    continue;
                };
                let same_file: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&x| ws.fns[x].file == f.file)
                    .collect();
                let chosen: Vec<usize> = if !same_file.is_empty() {
                    same_file
                } else {
                    let same_crate: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&x| ws.file_of(x).crate_name == file.crate_name)
                        .collect();
                    if same_crate.is_empty() {
                        cands.clone()
                    } else {
                        same_crate
                    }
                };
                es.extend(chosen);
            }
            es.sort_unstable();
            es.dedup();
            calls.push(cs);
            edges.push(es);
        }
        CallGraph { calls, edges }
    }

    /// BFS from `from` to the first function satisfying `is_target`,
    /// returning the inclusive path `from → … → target`. Deterministic:
    /// neighbours are explored in sorted fn-id order.
    pub fn path_to(&self, from: usize, is_target: &dyn Fn(usize) -> bool) -> Option<Vec<usize>> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut q = VecDeque::new();
        parent.insert(from, from);
        q.push_back(from);
        while let Some(n) = q.pop_front() {
            if is_target(n) {
                let mut path = vec![n];
                let mut cur = n;
                while parent[&cur] != cur {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for &m in &self.edges[n] {
                parent.entry(m).or_insert_with(|| {
                    q.push_back(m);
                    n
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::WorkspaceIr;

    fn graph(files: &[(&str, &str)]) -> (WorkspaceIr, CallGraph) {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let ws = WorkspaceIr::build(&owned);
        let cg = CallGraph::build(&ws);
        (ws, cg)
    }

    fn id(ws: &WorkspaceIr, name: &str) -> usize {
        ws.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn calls_resolve_and_reach_transitively() {
        let (ws, cg) = graph(&[(
            "crates/x/src/a.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn lonely() {}\n",
        )]);
        let (a, c, lonely) = (id(&ws, "a"), id(&ws, "c"), id(&ws, "lonely"));
        let path = cg.path_to(a, &|n| n == c).unwrap();
        let names: Vec<&str> = path.iter().map(|&n| ws.fns[n].name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert!(cg.path_to(a, &|n| n == lonely).is_none());
    }

    #[test]
    fn same_file_beats_same_crate_beats_workspace() {
        let (ws, cg) = graph(&[
            (
                "crates/x/src/a.rs",
                "fn go() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/x/src/b.rs", "fn helper() {}\n"),
            ("crates/y/src/c.rs", "fn helper() {}\n"),
        ]);
        let go = id(&ws, "go");
        assert_eq!(cg.edges[go].len(), 1, "same-file helper wins");
        assert_eq!(ws.fns[cg.edges[go][0]].file, 0);
    }

    #[test]
    fn macros_and_comparisons_are_classified() {
        let (ws, cg) = graph(&[(
            "crates/x/src/a.rs",
            "fn m() { writeln!(f, \"x\"); if a != b { go(); } }\nfn go() {}\n",
        )]);
        let m = id(&ws, "m");
        let macros: Vec<&str> = cg.calls[m]
            .iter()
            .filter(|c| c.is_macro)
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(macros, ["writeln"], "`a != b` must not look like a macro");
        assert!(cg.calls[m].iter().any(|c| c.name == "go" && !c.is_macro));
    }

    #[test]
    fn free_drop_does_not_resolve_to_destructors() {
        let (ws, cg) = graph(&[(
            "crates/x/src/a.rs",
            "fn go(g: G) { drop(g); }\nimpl Drop for G { fn drop(&mut self) { log(); } }\n",
        )]);
        let go = id(&ws, "go");
        assert!(cg.edges[go].is_empty(), "mem::drop is not the Drop impl");
    }
}
