//! Pass: every `Condvar::wait`/`wait_timeout` must sit inside a
//! `while`/`loop`/`for` body, because condition variables wake
//! spuriously — a single un-looped wait observes a predicate that may
//! already be false again.
//!
//! Zero-argument `.wait()` calls are excluded: those are
//! `process::Child::wait`-style blocking calls, not condition variables
//! (a `Condvar` wait always takes the guard as its first argument).

use crate::config;
use crate::diag::Diagnostic;
use crate::ir::WorkspaceIr;
use crate::lexer::TokKind;

/// Runs the pass over every non-test function.
pub fn run(ws: &WorkspaceIr) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let file = ws.file_of(id);
        let toks = &file.lexed.tokens;
        // Block stack: `true` entries are loop bodies. A loop keyword arms
        // `pending` at the current delimiter depth; the next `{` at that
        // depth is the loop body (braces inside the condition's closures or
        // parens do not consume the pending flag).
        let mut stack: Vec<bool> = Vec::new();
        let mut pending = false;
        let mut pending_delim = 0usize;
        let mut delim = 0usize;
        for i in f.body.clone() {
            if file.owner[i] != Some(id) {
                continue;
            }
            let t = &toks[i];
            match t.kind {
                TokKind::Punct('(') | TokKind::Punct('[') => delim += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => delim = delim.saturating_sub(1),
                TokKind::Punct('{') => {
                    let is_loop = pending && delim == pending_delim;
                    if is_loop {
                        pending = false;
                    }
                    stack.push(is_loop);
                }
                TokKind::Punct('}') => {
                    stack.pop();
                }
                TokKind::Ident if matches!(t.text.as_str(), "while" | "loop" | "for") => {
                    pending = true;
                    pending_delim = delim;
                }
                TokKind::Ident
                    if matches!(t.text.as_str(), "wait" | "wait_timeout")
                        && i >= 1
                        && toks[i - 1].kind == TokKind::Punct('.')
                        && toks
                            .get(i + 1)
                            .is_some_and(|n| n.kind == TokKind::Punct('('))
                        && toks
                            .get(i + 2)
                            .is_some_and(|n| n.kind != TokKind::Punct(')'))
                        && !stack.iter().any(|&l| l) =>
                {
                    diags.push(Diagnostic {
                        path: file.path.clone(),
                        line: t.line,
                        col: t.col,
                        rule: config::CONDVAR_WAIT_LOOP,
                        message: format!(
                            "`Condvar::{}` outside a `while`-predicate loop; condition \
                             variables wake spuriously — re-check the predicate in a loop \
                             around the wait",
                            t.text
                        ),
                    });
                }
                _ => {}
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::WorkspaceIr;

    fn pass(src: &str) -> Vec<Diagnostic> {
        let ws = WorkspaceIr::build(&[("crates/x/src/a.rs".to_string(), src.to_string())]);
        run(&ws)
    }

    #[test]
    fn bare_wait_is_flagged_looped_wait_is_not() {
        let d = pass(
            "fn bad(s: &S) { let g = s.m.lock().unwrap(); let g = s.cv.wait(g).unwrap(); }\n\
             fn good(s: &S) { let mut g = s.m.lock().unwrap(); \
             while !g.ready { g = s.cv.wait(g).unwrap(); } }\n\
             fn timeout(s: &S) { let mut g = s.m.lock().unwrap(); \
             loop { let r = s.cv.wait_timeout(g, d).unwrap(); g = r.0; if g.ready { break; } } }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("Condvar::wait"));
    }

    #[test]
    fn process_child_wait_is_not_a_condvar() {
        let d = pass("fn reap(c: &mut Child) { let status = c.wait(); }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn if_guard_does_not_count_as_a_loop() {
        let d = pass(
            "fn bad(s: &S) { let g = s.m.lock().unwrap(); \
             if !g.ready { let g = s.cv.wait(g).unwrap(); } }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn closure_brace_in_loop_condition_does_not_eat_the_body() {
        let d = pass(
            "fn ok(s: &S) { let mut g = s.m.lock().unwrap(); \
             while g.items.iter().any(|x| { x.live }) { g = s.cv.wait(g).unwrap(); } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
