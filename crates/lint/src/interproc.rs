//! Pass: interprocedural determinism — call-graph upgrade of the
//! line-local `wallclock-purity` / `unordered-iteration` rules.
//!
//! A function that touches a nondeterminism *source* (`Instant::now`,
//! `SystemTime`, `HashMap`/`HashSet`) is flagged when the call graph
//! shows a path from it into a deterministic-artifact *writer* (the
//! fingerprint/checkpoint/journal/metrics entry points). The line-local
//! rules only see sources inside the artifact crates themselves; this
//! pass catches the two-calls-away case — a clock read in `serve` that
//! flows into `obs::observe`, say. The obs timing sink
//! (`timing_gauge_add`, `span`) is deliberately *not* a writer: it is the
//! sanctioned wall-clock quarantine and is stripped from artifacts.

use crate::callgraph::{Call, CallGraph};
use crate::config;
use crate::diag::Diagnostic;
use crate::ir::WorkspaceIr;
use crate::lexer::TokKind;

/// Call names that write deterministic artifacts (fingerprints,
/// checkpoints, journal events, metrics). `log` is method-position only —
/// `journal.log(…)` / `run.log(…)` — to avoid free functions by that name.
const SINK_CALLS: &[&str] = &[
    "counter_add",
    "observe",
    "write_metrics",
    "metrics_json",
    "deterministic_json",
    "write_atomic",
    "write_tensor",
    "write_params",
    "encode_tensor",
    "encode_params",
    "encode_cell_meta",
    "encode_attack_result",
    "save_trained",
    "save_attack",
    "save_json",
    "log",
];

struct Source {
    line: u32,
    col: u32,
    what: &'static str,
    advice: &'static str,
}

fn is_sink_call(c: &Call) -> bool {
    !c.is_macro && SINK_CALLS.contains(&c.name.as_str()) && (c.name != "log" || c.is_method)
}

/// Runs the pass over every non-test function.
pub fn run(ws: &WorkspaceIr, cg: &CallGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // For each fn: the first artifact-writer call it makes, if any.
    let direct_sink: Vec<Option<&Call>> = (0..ws.fns.len())
        .map(|id| cg.calls[id].iter().find(|c| is_sink_call(c)))
        .collect();
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let sources = find_sources(ws, id);
        if sources.is_empty() {
            continue;
        }
        let Some(path) = cg.path_to(id, &|n| direct_sink[n].is_some()) else {
            continue;
        };
        let Some(sink) = path.last().copied().and_then(|t| direct_sink[t]) else {
            continue;
        };
        let chain: Vec<&str> = path.iter().map(|&n| ws.fns[n].name.as_str()).collect();
        let route = if chain.len() == 1 {
            format!("`{}` calls `{}` directly", chain[0], sink.name)
        } else {
            format!("via `{}` → `{}`", chain.join("` → `"), sink.name)
        };
        let file = ws.file_of(id);
        for s in sources {
            diags.push(Diagnostic {
                path: file.path.clone(),
                line: s.line,
                col: s.col,
                rule: config::TRANSITIVE_DETERMINISM,
                message: format!(
                    "{} can reach deterministic artifact writer `{}` ({}); {}",
                    s.what, sink.name, route, s.advice
                ),
            });
        }
    }
    diags
}

/// Nondeterminism sources lexically inside fn `id`'s own tokens. The
/// signature counts too: a fn that *takes* a `HashMap` and feeds a writer
/// leaks iteration order just as surely as one that builds the map itself.
fn find_sources(ws: &WorkspaceIr, id: usize) -> Vec<Source> {
    let f = &ws.fns[id];
    let file = ws.file_of(id);
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    for i in f.sig.clone().chain(f.body.clone()) {
        // Signature tokens never belong to a nested fn; body tokens do.
        if i >= f.body.start && file.owner[i] != Some(id) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant"
                if toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Punct(':'))
                    && toks
                        .get(i + 2)
                        .is_some_and(|n| n.kind == TokKind::Punct(':'))
                    && toks
                        .get(i + 3)
                        .is_some_and(|n| n.kind == TokKind::Ident && n.text == "now") =>
            {
                out.push(Source {
                    line: t.line,
                    col: t.col,
                    what: "`Instant::now()` in this function",
                    advice: "wall-clock readings must stay in the quarantined timing sink",
                });
            }
            "SystemTime" => out.push(Source {
                line: t.line,
                col: t.col,
                what: "`SystemTime` in this function",
                advice: "wall-clock readings must stay in the quarantined timing sink",
            }),
            "HashMap" | "HashSet" => out.push(Source {
                line: t.line,
                col: t.col,
                what: "unordered-map data in this function",
                advice: "iteration order is nondeterministic; use `BTreeMap`/`BTreeSet`",
            }),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::ir::WorkspaceIr;

    fn pass(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let ws = WorkspaceIr::build(&owned);
        let cg = CallGraph::build(&ws);
        run(&ws, &cg)
    }

    #[test]
    fn clock_two_calls_from_a_writer_is_flagged() {
        let d = pass(&[(
            "crates/nn/src/a.rs",
            "fn measure() { let t = Instant::now(); record(t); }\n\
             fn record(t: T) { emit(t); }\n\
             fn emit(t: T) { counter_add(\"n\", 1); }\n\
             fn pure() { let t = Instant::now(); t.elapsed(); }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("`measure` → `record` → `emit`"));
        assert!(d[0].message.contains("`counter_add`"));
    }

    #[test]
    fn hashmap_reaching_a_method_log_is_flagged() {
        let d = pass(&[(
            "crates/nn/src/a.rs",
            "fn index(m: &HashMap<u32, u32>) { journal.log(render(m)); }\n\
             fn isolated(m: &HashMap<u32, u32>) -> usize { m.len() }\n",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("unordered-map"));
        assert!(d[0].message.contains("calls `log` directly"));
    }

    #[test]
    fn timing_sink_is_not_a_writer() {
        let d = pass(&[(
            "crates/nn/src/a.rs",
            "fn timed() { let t = Instant::now(); timing_gauge_add(\"ns\", t.elapsed()); }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_fns_are_skipped() {
        let d = pass(&[(
            "crates/nn/src/a.rs",
            "#[test]\nfn t() { let t = Instant::now(); counter_add(\"n\", 1); }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }
}
