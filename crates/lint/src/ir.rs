//! The per-file / per-function IR the interprocedural passes run on.
//!
//! [`WorkspaceIr::build`] lexes every file once, parses its directives and
//! `fn` items, and records an *owner map* assigning each token to its
//! innermost enclosing function, so nested functions never leak tokens
//! into their parent's analysis.

use std::ops::Range;

use crate::config;
use crate::lexer::{self, Lexed, Tok};
use crate::parser;
use crate::suppress::{self, Directives};

/// One function definition, workspace-wide.
#[derive(Debug)]
pub struct FnDef {
    /// Simple name.
    pub name: String,
    /// Index into [`WorkspaceIr::files`].
    pub file: usize,
    /// Line of the name token.
    pub line: u32,
    /// Column of the name token.
    pub col: u32,
    /// Flattened attribute bodies.
    pub attrs: Vec<String>,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// In a test file, a `#[cfg(test)]` module, or under `#[test]`.
    pub is_test: bool,
    /// Token range of the signature (`fn` keyword up to the body brace).
    pub sig: Range<usize>,
    /// Token range of the body (between, excluding, its braces).
    pub body: Range<usize>,
}

/// One lexed, directive-parsed workspace file.
#[derive(Debug)]
pub struct FileIr {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Crate name (`tensor` for `crates/tensor/...`), empty otherwise.
    pub crate_name: String,
    /// Token stream and comments.
    pub lexed: Lexed,
    /// Parsed suppression directives.
    pub directives: Directives,
    /// Per-token `#[test]`/`#[cfg(test)]` coverage.
    pub test_mask: Vec<bool>,
    /// Per-token innermost enclosing function (global fn id), if any.
    pub owner: Vec<Option<usize>>,
    /// Global ids of the functions defined in this file, in source order.
    pub fns: Vec<usize>,
}

/// The whole workspace, ready for the passes.
#[derive(Debug)]
pub struct WorkspaceIr {
    /// Files in input order.
    pub files: Vec<FileIr>,
    /// All functions across all files; ids index this vec.
    pub fns: Vec<FnDef>,
}

impl WorkspaceIr {
    /// Builds the IR from `(path, source)` pairs.
    pub fn build(files: &[(String, String)]) -> Self {
        let mut ws = WorkspaceIr {
            files: Vec::with_capacity(files.len()),
            fns: Vec::new(),
        };
        for (path, src) in files {
            let lexed = lexer::lex(src);
            let directives = suppress::parse(path, &lexed.comments);
            let test_mask = parser::test_token_mask(&lexed.tokens);
            let raw = parser::parse_fns(&lexed.tokens);
            let file_ix = ws.files.len();
            let file_is_test = config::path_is_test_code(path);
            let mut owner = vec![None; lexed.tokens.len()];
            let mut fn_ids = Vec::with_capacity(raw.len());
            for rf in raw {
                let id = ws.fns.len();
                // Source order means inner fns are assigned after their
                // parent and overwrite it: innermost owner wins.
                for o in &mut owner[rf.body.clone()] {
                    *o = Some(id);
                }
                ws.fns.push(FnDef {
                    name: rf.name,
                    file: file_ix,
                    line: rf.line,
                    col: rf.col,
                    attrs: rf.attrs,
                    is_unsafe: rf.is_unsafe,
                    is_test: file_is_test || test_mask.get(rf.fn_tok).copied().unwrap_or(false),
                    sig: rf.sig,
                    body: rf.body,
                });
                fn_ids.push(id);
            }
            ws.files.push(FileIr {
                path: path.clone(),
                crate_name: crate_of(path),
                lexed,
                directives,
                test_mask,
                owner,
                fns: fn_ids,
            });
        }
        ws
    }

    /// The token stream of the file containing fn `f`.
    pub fn tokens_of(&self, f: usize) -> &[Tok] {
        &self.files[self.fns[f].file].lexed.tokens
    }

    /// The file containing fn `f`.
    pub fn file_of(&self, f: usize) -> &FileIr {
        &self.files[self.fns[f].file]
    }

    /// Looks a file up by its workspace-relative path.
    pub fn file_by_path(&self, path: &str) -> Option<&FileIr> {
        self.files.iter().find(|f| f.path == path)
    }
}

fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(path: &str, src: &str) -> WorkspaceIr {
        WorkspaceIr::build(&[(path.to_string(), src.to_string())])
    }

    #[test]
    fn owner_map_gives_tokens_to_the_innermost_fn() {
        let w = ws(
            "crates/x/src/a.rs",
            "fn outer() { before(); fn inner() { mid(); } after(); }",
        );
        assert_eq!(w.fns.len(), 2);
        let file = &w.files[0];
        let toks = &file.lexed.tokens;
        let at = |name: &str| toks.iter().position(|t| t.text == name).unwrap();
        assert_eq!(file.owner[at("before")], Some(0));
        assert_eq!(file.owner[at("mid")], Some(1));
        assert_eq!(file.owner[at("after")], Some(0));
    }

    #[test]
    fn test_fns_and_crate_names_are_recognised() {
        let w = ws(
            "crates/tensor/src/a.rs",
            "#[test]\nfn t() {}\nfn prod() {}\n",
        );
        assert_eq!(w.files[0].crate_name, "tensor");
        assert!(w.fns[0].is_test);
        assert!(!w.fns[1].is_test);
        let wt = ws("crates/tensor/tests/b.rs", "fn helper() {}\n");
        assert!(wt.fns[0].is_test, "test-path files are all test code");
    }
}
