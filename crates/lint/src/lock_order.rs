//! Pass: lock acquisition order and blocking-while-locked.
//!
//! Walks every non-test function body simulating the set of live mutex
//! guards: a `recv.lock()` call acquires the lock keyed by the last
//! receiver identifier (`shared.state.lock()` → `state`), a `let`-bound
//! guard lives to the end of its block (or an explicit `drop(guard)`), a
//! temporary guard lives to the end of its statement. Two reports come
//! out of the simulation directly — `Condvar::wait` while another lock is
//! held, and blocking I/O under any lock — and the acquired-while-holding
//! edges feed a per-crate graph whose cycles are reported once each.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config;
use crate::diag::Diagnostic;
use crate::ir::WorkspaceIr;
use crate::lexer::{Tok, TokKind};

/// Methods that block the calling thread on I/O or another process.
const BLOCKING_METHODS: &[&str] = &[
    "flush",
    "write_all",
    "write_fmt",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "sync_all",
    "sync_data",
    "accept",
    "recv",
    "recv_timeout",
];

/// Macros whose first argument is written to as `io::Write`.
const WRITE_MACROS: &[&str] = &["write", "writeln"];

#[derive(Debug)]
struct Guard {
    /// Binding name, `None` for temporaries.
    name: Option<String>,
    /// The lock's key: the receiver identifier before `.lock()`.
    key: String,
    /// Brace depth the binding lives at.
    depth: usize,
    /// Dies at the end of the current statement.
    temp: bool,
}

/// Per-crate acquired-while-holding edges: `(crate, held, acquired)` →
/// first acquisition site `(path, line, col)`.
type Edges = BTreeMap<(String, String, String), (String, u32, u32)>;

/// Runs the pass over every non-test function.
pub fn run(ws: &WorkspaceIr) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut edges: Edges = BTreeMap::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        analyze_fn(ws, id, &mut diags, &mut edges);
    }
    report_cycles(&edges, &mut diags);
    diags
}

fn analyze_fn(ws: &WorkspaceIr, id: usize, diags: &mut Vec<Diagnostic>, edges: &mut Edges) {
    let f = &ws.fns[id];
    let file = ws.file_of(id);
    let toks = &file.lexed.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize; // brace depth inside the body
    let mut delim = 0usize; // paren/bracket depth, gates `;` significance
    let mut push = |line: u32, col: u32, message: String, diags: &mut Vec<Diagnostic>| {
        diags.push(Diagnostic {
            path: file.path.clone(),
            line,
            col,
            rule: config::LOCK_ORDER,
            message,
        });
    };
    for i in f.body.clone() {
        if file.owner[i] != Some(id) {
            continue;
        }
        let t = &toks[i];
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            TokKind::Punct('(') | TokKind::Punct('[') => delim += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => delim = delim.saturating_sub(1),
            TokKind::Punct(';') if delim == 0 => guards.retain(|g| !g.temp),
            TokKind::Ident => {
                let name = t.text.as_str();
                // `drop(guard)` releases a named guard early.
                if name == "drop"
                    && toks
                        .get(i + 1)
                        .is_some_and(|n| n.kind == TokKind::Punct('('))
                    && toks
                        .get(i + 3)
                        .is_some_and(|n| n.kind == TokKind::Punct(')'))
                {
                    if let Some(dropped) = toks.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                        guards.retain(|g| g.name.as_deref() != Some(dropped.text.as_str()));
                    }
                    continue;
                }
                let prev_dot = i >= 1 && toks[i - 1].kind == TokKind::Punct('.');
                let next_paren = toks
                    .get(i + 1)
                    .is_some_and(|n| n.kind == TokKind::Punct('('));
                if prev_dot && next_paren && name == "lock" {
                    acquire(toks, i, depth, &mut guards, edges, file, diags, &mut push);
                    continue;
                }
                let is_wait = name == "wait" || name == "wait_timeout";
                if prev_dot && next_paren && (is_wait || BLOCKING_METHODS.contains(&name)) {
                    if guards.is_empty() {
                        continue;
                    }
                    if is_wait {
                        let arg = toks.get(i + 2);
                        if arg.is_some_and(|a| a.kind == TokKind::Punct(')')) {
                            // Zero-arg `.wait()` (e.g. `process::Child`):
                            // plain blocking call under a lock.
                            for g in &guards {
                                push(
                                    t.line,
                                    t.col,
                                    format!(
                                        "blocking call `.{name}()` while lock `{}` is held; \
                                         every contender on `{}` stalls behind it",
                                        g.key, g.key
                                    ),
                                    diags,
                                );
                            }
                            continue;
                        }
                        let waited = arg
                            .filter(|a| a.kind == TokKind::Ident)
                            .map(|a| a.text.as_str());
                        let waited_is_guard = waited
                            .is_some_and(|w| guards.iter().any(|g| g.name.as_deref() == Some(w)));
                        for g in &guards {
                            // The waited-on guard is atomically released by
                            // the Condvar; every *other* held lock deadlocks
                            // the thread that is supposed to wake us.
                            if waited_is_guard && g.name.as_deref() == waited {
                                continue;
                            }
                            push(
                                t.line,
                                t.col,
                                format!(
                                    "`Condvar::{name}` parks the thread while lock `{}` stays \
                                     held; the waker (or any contender on `{}`) can deadlock \
                                     against the sleeping waiter",
                                    g.key, g.key
                                ),
                                diags,
                            );
                        }
                    } else {
                        for g in &guards {
                            push(
                                t.line,
                                t.col,
                                format!(
                                    "blocking call `.{name}()` while lock `{}` is held; \
                                     every contender on `{}` stalls behind the I/O",
                                    g.key, g.key
                                ),
                                diags,
                            );
                        }
                    }
                    continue;
                }
                // `write!(guard, …)` / `writeln!(guard, …)`: I/O on a guard.
                if WRITE_MACROS.contains(&name)
                    && toks
                        .get(i + 1)
                        .is_some_and(|n| n.kind == TokKind::Punct('!'))
                    && toks
                        .get(i + 2)
                        .is_some_and(|n| n.kind == TokKind::Punct('('))
                {
                    if let Some(dest) = toks.get(i + 3).filter(|n| n.kind == TokKind::Ident) {
                        if let Some(g) = guards
                            .iter()
                            .find(|g| g.name.as_deref() == Some(dest.text.as_str()))
                        {
                            push(
                                t.line,
                                t.col,
                                format!(
                                    "`{name}!` writes to I/O while lock `{}` is held; every \
                                     contender on `{}` stalls behind the write",
                                    g.key, g.key
                                ),
                                diags,
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Handles one `recv.lock()` site: computes the key, the binding, the
/// acquired-while-holding edges, and pushes the new guard.
#[allow(clippy::too_many_arguments)]
fn acquire(
    toks: &[Tok],
    lock_ix: usize,
    depth: usize,
    guards: &mut Vec<Guard>,
    edges: &mut Edges,
    file: &crate::ir::FileIr,
    diags: &mut Vec<Diagnostic>,
    push: &mut impl FnMut(u32, u32, String, &mut Vec<Diagnostic>),
) {
    let t = &toks[lock_ix];
    // Key: the identifier right before `.lock` — skip untracked receivers
    // like `make_lock().lock()`.
    let Some(key_ix) = lock_ix.checked_sub(2) else {
        return;
    };
    if toks[key_ix].kind != TokKind::Ident {
        return;
    }
    let key = toks[key_ix].text.clone();
    // Receiver chain start: walk back over `a.b` / `a::b` segments.
    let mut start = key_ix;
    loop {
        if start >= 2
            && toks[start - 1].kind == TokKind::Punct('.')
            && toks[start - 2].kind == TokKind::Ident
        {
            start -= 2;
        } else if start >= 3
            && toks[start - 1].kind == TokKind::Punct(':')
            && toks[start - 2].kind == TokKind::Punct(':')
            && toks[start - 3].kind == TokKind::Ident
        {
            start -= 3;
        } else {
            break;
        }
    }
    // Binding: `[let [mut]] NAME = recv.lock()…` — anything else is a
    // temporary that dies at the statement's `;`.
    let mut name: Option<String> = None;
    if start >= 2 && toks[start - 1].kind == TokKind::Punct('=') {
        let before = &toks[start - 2];
        if before.kind == TokKind::Ident && before.text != "mut" {
            name = Some(before.text.clone());
        } else if before.text == "mut" && start >= 3 && toks[start - 3].kind == TokKind::Ident {
            name = Some(toks[start - 3].text.clone());
        }
    }
    // Reassignment to an existing guard name replaces the old guard.
    if let Some(n) = &name {
        guards.retain(|g| g.name.as_deref() != Some(n.as_str()));
    }
    for g in guards.iter() {
        if g.key == key {
            push(
                t.line,
                t.col,
                format!(
                    "lock `{key}` acquired while already held; `std::sync::Mutex` is not \
                     reentrant — this self-deadlocks"
                ),
                diags,
            );
            continue;
        }
        edges
            .entry((file.crate_name.clone(), g.key.clone(), key.clone()))
            .or_insert((file.path.clone(), t.line, t.col));
    }
    let temp = name.is_none();
    guards.push(Guard {
        name,
        key,
        depth,
        temp,
    });
}

/// Reports each distinct lock-order cycle once, anchored at the first
/// (in `Edges` order, i.e. deterministic) edge that closes it.
fn report_cycles(edges: &Edges, diags: &mut Vec<Diagnostic>) {
    let mut adj: BTreeMap<&str, BTreeMap<&str, BTreeSet<&str>>> = BTreeMap::new();
    for (krate, from, to) in edges.keys() {
        adj.entry(krate)
            .or_default()
            .entry(from)
            .or_default()
            .insert(to);
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for ((krate, from, to), (path, line, col)) in edges {
        if from == to {
            continue; // self-acquisition is reported at the site directly
        }
        let Some(back) = bfs_path(&adj[krate.as_str()], to, from) else {
            continue;
        };
        let mut cycle: Vec<String> = vec![from.clone()];
        cycle.extend(back.iter().map(|s| s.to_string()));
        let mut dedupe_key = cycle.clone();
        dedupe_key.sort();
        dedupe_key.dedup();
        if !reported.insert(dedupe_key) {
            continue;
        }
        let chain = cycle.join("` → `");
        diags.push(Diagnostic {
            path: path.clone(),
            line: *line,
            col: *col,
            rule: config::LOCK_ORDER,
            message: format!(
                "lock-order cycle in crate `{krate}`: `{chain}`; every thread must acquire \
                 these locks in one global order or two threads can deadlock"
            ),
        });
    }
}

/// BFS over one crate's adjacency, returning `[from, …, to]` if reachable.
fn bfs_path<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut q = VecDeque::new();
    parent.insert(from, from);
    q.push_back(from);
    while let Some(n) = q.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while parent[cur] != cur {
                cur = parent[cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &m in adj.get(n).into_iter().flatten() {
            parent.entry(m).or_insert_with(|| {
                q.push_back(m);
                n
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::WorkspaceIr;

    fn pass(src: &str) -> Vec<Diagnostic> {
        let ws = WorkspaceIr::build(&[("crates/x/src/a.rs".to_string(), src.to_string())]);
        run(&ws)
    }

    #[test]
    fn cycle_across_two_fns_is_reported_once() {
        let d = pass(
            "fn ab(s: &S) { let a = s.a.lock().unwrap(); let b = s.b.lock().unwrap(); }\n\
             fn ba(s: &S) { let b = s.b.lock().unwrap(); let a = s.a.lock().unwrap(); }\n",
        );
        let cycles: Vec<_> = d.iter().filter(|x| x.message.contains("cycle")).collect();
        assert_eq!(cycles.len(), 1, "{d:?}");
        assert!(cycles[0].message.contains("`a` → `b` → `a`"));
    }

    #[test]
    fn consistent_order_and_dropped_guards_are_clean() {
        let d = pass(
            "fn one(s: &S) { let a = s.a.lock().unwrap(); let b = s.b.lock().unwrap(); }\n\
             fn two(s: &S) { let b = s.b.lock().unwrap(); drop(b); \
             let a = s.a.lock().unwrap(); }\n",
        );
        // two() acquires a only after dropping b, so no b→a edge forms and
        // one()'s a→b edge closes no cycle. Without the drop() this would
        // be a classic ABBA deadlock report.
        assert!(
            d.iter().all(|x| !x.message.contains("cycle")),
            "drop(b) must end the guard: {d:?}"
        );
    }

    #[test]
    fn wait_with_second_lock_held_is_flagged() {
        let d = pass(
            "fn go(s: &S) { let lease = s.lease.lock().unwrap(); \
             let mut g = s.state.lock().unwrap(); \
             while g.n > 0 { g = s.done.wait(g).unwrap(); } }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`lease` stays held"));
    }

    #[test]
    fn wait_on_only_guard_is_clean() {
        let d = pass(
            "fn go(s: &S) { let mut g = s.state.lock().unwrap(); \
             while g.n > 0 { g = s.cv.wait(g).unwrap(); } }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn io_under_lock_is_flagged_for_named_and_temp_guards() {
        let d = pass(
            "fn log(s: &S) { let mut file = s.file.lock().unwrap(); \
             writeln!(file, \"x\").ok(); file.flush().ok(); }\n\
             fn tmp(s: &S) { s.file.lock().unwrap().flush().ok(); }\n\
             fn after(s: &S) { s.file.lock().unwrap(); out.flush().ok(); }\n",
        );
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d[0].message.contains("`writeln!`"));
        assert!(d[1].message.contains("`.flush()`"));
        // after(): the temporary guard died at its `;` before the flush.
        assert!(d[2].path.contains("a.rs") && d[2].line == 2);
    }

    #[test]
    fn double_lock_of_same_key_is_a_self_deadlock() {
        let d = pass("fn go(s: &S) { let a = s.m.lock().unwrap(); let b = s.m.lock().unwrap(); }");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("not reentrant"), "{d:?}");
    }
}
