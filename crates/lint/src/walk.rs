//! Deterministic workspace file discovery.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, VCS metadata, and
/// the lint fixture corpus (whose files *deliberately* violate the rules).
/// `vendor/` holds offline stand-ins for crates.io dependencies, not
/// first-party code, so the workspace contracts do not apply there.
const SKIP_DIRS: &[&str] = &["target", "fixtures", "vendor", ".git"];

fn visit(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            visit(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Collects every `.rs` file under `root/crates`, sorted by path, skipping
/// build output, fixtures, vendored stand-ins, and VCS metadata (see
/// `SKIP_DIRS`). Returns paths as given (joinable back onto `root`).
///
/// # Errors
///
/// Returns an [`io::Error`] if a directory cannot be read.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        visit(&crates, &mut out)?;
    }
    out.sort();
    Ok(out)
}

/// The workspace-relative, forward-slash form of `path` used in
/// diagnostics and scope matching. Paths outside `root` (explicit `FILE`
/// arguments) keep their leading `/` without duplicating it.
pub fn relative_display(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for c in rel.components() {
        match c {
            std::path::Component::RootDir => out.push('/'),
            c => {
                if !out.is_empty() && !out.ends_with('/') {
                    out.push('/');
                }
                out.push_str(&c.as_os_str().to_string_lossy());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_finds_this_crate_and_skips_fixtures_and_vendor() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_files(&root).unwrap();
        let rels: Vec<String> = files.iter().map(|f| relative_display(&root, f)).collect();
        assert!(
            rels.iter().any(|r| r == "crates/lint/src/walk.rs"),
            "{rels:?}"
        );
        assert!(rels.iter().all(|r| !r.contains("/fixtures/")));
        assert!(rels.iter().all(|r| !r.starts_with("vendor/")));
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted, "walk order must be deterministic");
    }
}
