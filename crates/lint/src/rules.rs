//! The five line-local armor-lint rules, implemented as patterns over the
//! token stream produced by [`crate::lexer`]. (The four interprocedural
//! rules live in their own pass modules and run from
//! [`crate::analyze_sources`].)

use crate::config::{self, Config};
use crate::diag::Diagnostic;
use crate::lexer::{Lexed, Tok, TokKind};
use crate::parser::test_token_mask;
use crate::suppress::Directives;

/// Rust keywords that can legally precede `[` without forming an index
/// expression (`let [a, b] = …`, `in [1, 2]`, `return [x]`, …).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "yield",
];

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const ALLOC_METHODS: &[&str] = &["to_vec", "clone", "collect"];

/// For each token, the name of the innermost enclosing function that is
/// *hot* (name ends in `_into` or a `// armor-lint: hot` marker precedes
/// the `fn`), if any.
fn hot_fn_mask(tokens: &[Tok], hot_lines: &[u32]) -> Vec<Option<String>> {
    #[derive(Debug)]
    struct Frame {
        name: Option<String>, // Some(..) when hot
        depth: usize,
    }
    let mut mask: Vec<Option<String>> = vec![None; tokens.len()];
    let mut stack: Vec<Frame> = Vec::new();
    let mut depth = 0usize;
    // A pending fn whose body `{` we are still looking for.
    let mut pending: Option<(String, bool, usize)> = None; // (name, hot, paren_depth)
    let mut markers: Vec<u32> = hot_lines.to_vec();
    markers.sort_unstable();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokKind::Ident && t.text == "fn" {
            if let Some(name_tok) = tokens.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    // A marker fires for the first fn at or below its line.
                    let marked = match markers.iter().position(|&m| m <= t.line) {
                        Some(p) => {
                            markers.remove(p);
                            true
                        }
                        None => false,
                    };
                    let hot = marked || name_tok.text.ends_with("_into");
                    pending = Some((name_tok.text.clone(), hot, 0));
                    i += 2;
                    continue;
                }
            }
        }
        match t.kind {
            TokKind::Punct('(') => {
                if let Some(p) = pending.as_mut() {
                    p.2 += 1;
                }
            }
            TokKind::Punct(')') => {
                if let Some(p) = pending.as_mut() {
                    p.2 = p.2.saturating_sub(1);
                }
            }
            TokKind::Punct(';') if pending.as_ref().is_some_and(|p| p.2 == 0) => {
                pending = None; // trait method declaration, no body
            }
            TokKind::Punct('{') => {
                depth += 1;
                if let Some((name, hot, paren_depth)) = pending.take() {
                    if paren_depth == 0 {
                        stack.push(Frame {
                            name: hot.then_some(name),
                            depth,
                        });
                    } else {
                        // `{` inside the signature (e.g. a const generic
                        // default) — keep looking for the body.
                        pending = Some((name, hot, paren_depth));
                    }
                }
            }
            TokKind::Punct('}') => {
                if stack.last().is_some_and(|f| f.depth == depth) {
                    stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }
        if let Some(hot) = stack.iter().rev().find_map(|f| f.name.clone()) {
            mask[i] = Some(hot);
        }
        i += 1;
    }
    mask
}

struct Finding {
    rule: &'static str,
    line: u32,
    col: u32,
    message: String,
}

fn scan(tokens: &[Tok], hot: &[Option<String>]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut push = |rule: &'static str, t: &Tok, message: String| {
        out.push(Finding {
            rule,
            line: t.line,
            col: t.col,
            message,
        });
    };
    for (i, t) in tokens.iter().enumerate() {
        let next = tokens.get(i + 1);
        let next2 = tokens.get(i + 2);
        match t.kind {
            TokKind::Ident => {
                let name = t.text.as_str();
                // `panic!` / `todo!` / `unimplemented!` / `unreachable!`
                if PANIC_MACROS.contains(&name)
                    && next.is_some_and(|n| n.kind == TokKind::Punct('!'))
                {
                    push(
                        config::NO_PANIC_IN_IO,
                        t,
                        format!("`{name}!` in I/O-facing code; return a typed error instead"),
                    );
                }
                // `Instant :: now` and any `SystemTime`
                if name == "Instant"
                    && next.is_some_and(|n| n.kind == TokKind::Punct(':'))
                    && next2.is_some_and(|n| n.kind == TokKind::Punct(':'))
                    && tokens
                        .get(i + 3)
                        .is_some_and(|n| n.kind == TokKind::Ident && n.text == "now")
                {
                    push(
                        config::WALLCLOCK_PURITY,
                        t,
                        "`Instant::now()` in artifact-scoped code; wall-clock time must \
                         never reach fingerprints, checkpoints, or journal payloads"
                            .into(),
                    );
                }
                if name == "SystemTime" {
                    push(
                        config::WALLCLOCK_PURITY,
                        t,
                        "`SystemTime` in artifact-scoped code; wall-clock time must \
                         never reach fingerprints, checkpoints, or journal payloads"
                            .into(),
                    );
                }
                if name == "HashMap" || name == "HashSet" {
                    push(
                        config::UNORDERED_ITERATION,
                        t,
                        format!(
                            "`{name}` in artifact-producing code iterates in \
                             nondeterministic order; use `BTreeMap`/`BTreeSet` or a \
                             sorted collection"
                        ),
                    );
                }
                if name == "unsafe" {
                    push(
                        config::UNSAFE_NEEDS_SAFETY_COMMENT,
                        t,
                        "`unsafe` without a `// SAFETY:` comment on the same line or \
                         the three lines above"
                            .into(),
                    );
                }
                // Hot-loop allocation: `Vec::new` / `Vec::with_capacity` / `vec!`
                if let Some(Some(fn_name)) = hot.get(i) {
                    if name == "Vec"
                        && next.is_some_and(|n| n.kind == TokKind::Punct(':'))
                        && next2.is_some_and(|n| n.kind == TokKind::Punct(':'))
                        && tokens.get(i + 3).is_some_and(|n| {
                            n.kind == TokKind::Ident
                                && (n.text == "new" || n.text == "with_capacity")
                        })
                    {
                        let what = &tokens[i + 3].text;
                        push(
                            config::NO_ALLOC_IN_HOT_LOOP,
                            t,
                            format!(
                                "`Vec::{what}` allocates inside hot function \
                                 `{fn_name}`; lease the buffer from the workspace arena"
                            ),
                        );
                    }
                    if name == "vec" && next.is_some_and(|n| n.kind == TokKind::Punct('!')) {
                        push(
                            config::NO_ALLOC_IN_HOT_LOOP,
                            t,
                            format!(
                                "`vec!` allocates inside hot function `{fn_name}`; \
                                 lease the buffer from the workspace arena"
                            ),
                        );
                    }
                }
            }
            TokKind::Punct('.') => {
                // `.unwrap()` / `.expect(` and hot-loop `.to_vec()` etc.
                if let Some(n) = next {
                    if n.kind == TokKind::Ident
                        && next2.is_some_and(|p| p.kind == TokKind::Punct('('))
                    {
                        let m = n.text.as_str();
                        if PANIC_METHODS.contains(&m) {
                            push(
                                config::NO_PANIC_IN_IO,
                                n,
                                format!(
                                    "`.{m}()` can panic in I/O-facing code; return a \
                                     typed error instead"
                                ),
                            );
                        }
                        if ALLOC_METHODS.contains(&m) {
                            if let Some(Some(fn_name)) = hot.get(i) {
                                push(
                                    config::NO_ALLOC_IN_HOT_LOOP,
                                    n,
                                    format!(
                                        "`.{m}()` allocates inside hot function \
                                         `{fn_name}`; reuse a leased buffer instead"
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            TokKind::Punct('[') => {
                // Index expressions: `expr[...]` — the `[` directly follows
                // an identifier, `)`, `]`, or `?`. Array types/literals,
                // attributes, and slice patterns follow other tokens.
                let is_index = i
                    .checked_sub(1)
                    .and_then(|p| tokens.get(p))
                    .is_some_and(|prev| match prev.kind {
                        TokKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
                        TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('?') => true,
                        _ => false,
                    });
                if is_index {
                    push(
                        config::NO_PANIC_IN_IO,
                        t,
                        "`[…]` indexing can panic in I/O-facing code; use `.get()` or a \
                         checked pattern"
                            .into(),
                    );
                }
            }
            _ => {}
        }
    }
    out
}

/// Runs the line-local rules over one pre-lexed file, returning its
/// (unsorted) diagnostics. Directive-grammar diagnostics are *not*
/// included — [`crate::analyze_sources`] appends those once per file.
pub(crate) fn lint_lexed(
    path: &str,
    lexed: &Lexed,
    directives: &Directives,
    config: &Config,
) -> Vec<Diagnostic> {
    let file_is_test = config::path_is_test_code(path);
    let test_mask = test_token_mask(&lexed.tokens);
    let hot = hot_fn_mask(&lexed.tokens, &directives.hot_lines);

    let mut diags: Vec<Diagnostic> = Vec::new();
    let findings = scan(&lexed.tokens, &hot);
    // `scan` anchors findings to tokens; map each back to its token index
    // for the test mask by position.
    let mut tok_ix = 0usize;
    for f in findings {
        while tok_ix < lexed.tokens.len()
            && (lexed.tokens[tok_ix].line, lexed.tokens[tok_ix].col) < (f.line, f.col)
        {
            tok_ix += 1;
        }
        let in_test = file_is_test || test_mask.get(tok_ix).copied().unwrap_or(false);
        let Some(scope) = config.scope(f.rule) else {
            continue;
        };
        if !scope.covers(path) {
            continue;
        }
        if scope.skip_test_code && in_test {
            continue;
        }
        if f.rule == config::UNSAFE_NEEDS_SAFETY_COMMENT && directives.has_safety_comment(f.line) {
            continue;
        }
        if directives.allows(f.rule, f.line) {
            continue;
        }
        diags.push(Diagnostic {
            path: path.to_string(),
            line: f.line,
            col: f.col,
            rule: f.rule,
            message: f.message,
        });
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_source;

    fn store_path_lint(src: &str) -> Vec<Diagnostic> {
        lint_source("crates/store/src/x.rs", src, &Config::workspace_default())
    }

    #[test]
    fn flags_unwrap_expect_panic_and_indexing_in_scope() {
        let src = "fn f(v: &[u8]) { v.get(0).unwrap(); x.expect(\"m\"); panic!(\"b\"); \
                   let y = v[0]; }";
        let rules: Vec<_> = store_path_lint(src).iter().map(|d| d.rule).collect();
        assert_eq!(
            rules,
            ["no-panic-in-io"; 4].to_vec(),
            "{:?}",
            store_path_lint(src)
        );
    }

    #[test]
    fn out_of_scope_paths_are_clean() {
        let src = "fn f() { x.unwrap(); }";
        assert!(
            lint_source("crates/tensor/src/x.rs", src, &Config::workspace_default()).is_empty()
        );
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { x.unwrap(); let y = v[0]; }\n}\n";
        assert!(store_path_lint(src).is_empty());
    }

    #[test]
    fn test_fn_is_exempt_but_surrounding_code_is_not() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn g() { y.unwrap(); }\n";
        let d = store_path_lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn slice_patterns_attributes_and_array_types_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f(x: [u8; 4]) -> [u8; 2] {\n\
                   let [a, b] = [x[0], 1];\n let v = vec![0; 4];\n [a, b]\n}";
        let d = store_path_lint(src);
        assert_eq!(d.len(), 1, "{d:?}"); // only x[0]
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn wallclock_and_unordered_fire_in_scope() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n\
                   fn g(m: &HashMap<u32, u32>) {}\n";
        let rules: Vec<_> = store_path_lint(src).iter().map(|d| d.rule).collect();
        assert_eq!(rules, ["wallclock-purity", "unordered-iteration"]);
    }

    #[test]
    fn hot_functions_reject_allocation() {
        let src = "fn pack_into(out: &mut [f32]) { let v = Vec::new(); let w = vec![0]; \
                   let c = x.clone(); let t = y.to_vec(); let z: Vec<_> = it.collect(); }\n\
                   fn cold() { let v = Vec::new(); }\n\
                   // armor-lint: hot\nfn marked() { let v = x.to_vec(); }\n";
        let d = lint_source("crates/tensor/src/x.rs", src, &Config::workspace_default());
        assert_eq!(d.len(), 6, "{d:?}");
        assert!(d.iter().all(|x| x.rule == "no-alloc-in-hot-loop"));
        assert!(d.iter().any(|x| x.message.contains("`marked`")));
    }

    #[test]
    fn unsafe_requires_a_safety_comment() {
        let src = "fn f() { unsafe { go() } }\n\
                   // SAFETY: exclusive access guaranteed by the mutex\n\
                   fn g() { unsafe { go() } }\n";
        let d = lint_source("crates/tensor/src/x.rs", src, &Config::workspace_default());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn justified_allow_suppresses_and_bare_allow_reports() {
        let src = "// armor-lint: allow(no-panic-in-io) -- index bounded by loop guard\n\
                   fn f(v: &[u8]) { let x = v[0]; }\n\
                   fn g(v: &[u8]) { let x = v[0]; } // armor-lint: allow(no-panic-in-io)\n";
        let d = store_path_lint(src);
        assert_eq!(d.len(), 2, "{d:?}");
        // The bare allow reports itself AND does not suppress the finding.
        assert!(d.iter().any(|x| x.rule == "bare-allow"));
        assert!(d.iter().any(|x| x.rule == "no-panic-in-io" && x.line == 3));
    }
}
