//! Diagnostics: the rustc-style text rendering and the `--json` report.

use std::fmt;

/// One finding, anchored to a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// Rule identifier (e.g. `no-panic-in-io`).
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Sorts diagnostics into the stable reporting order: path, line, column,
/// rule id.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
}

pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders the machine-readable report: a JSON object with the finding
/// count and one entry per diagnostic. Hand-rolled so the lint crate stays
/// dependency-free.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"path\": \"");
        escape_json(&d.path, &mut out);
        out.push_str(&format!(
            "\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"",
            d.line, d.col, d.rule
        ));
        escape_json(&d.message, &mut out);
        out.push_str("\"}");
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", diags.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_rustc_style() {
        let d = Diagnostic {
            path: "crates/store/src/run.rs".into(),
            line: 12,
            col: 5,
            rule: "no-panic-in-io",
            message: "boom".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/store/src/run.rs:12:5: [no-panic-in-io] boom"
        );
    }

    #[test]
    fn json_escapes_and_counts() {
        let d = Diagnostic {
            path: "a.rs".into(),
            line: 1,
            col: 2,
            rule: "r",
            message: "say \"hi\"\\".into(),
        };
        let j = to_json(&[d]);
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("say \\\"hi\\\"\\\\"));
        assert_eq!(to_json(&[]), "{\n  \"findings\": [],\n  \"count\": 0\n}\n");
    }
}
