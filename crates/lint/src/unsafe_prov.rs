//! Pass: unsafe-provenance hygiene, scoped to the one unsafe-capable
//! crate (`crates/tensor`). Three checks:
//!
//! 1. **SAFETY names the invariant** — a `// SAFETY:` comment shorter
//!    than a clause (`// SAFETY: fine`) satisfies the line-local
//!    `unsafe-needs-safety-comment` rule but documents nothing; require
//!    enough text to name the guarantee relied upon.
//! 2. **`#[target_feature]` dispatch** — calling a `#[target_feature]`
//!    function on a CPU without the feature is undefined behaviour, so
//!    every call site must sit in a function that (directly, or through
//!    one called predicate like `simd_available()`) checks
//!    `is_x86_feature_detected!`.
//! 3. **Escaping raw pointers** — an `unsafe { … }` block in value
//!    position whose tail expression produces a raw pointer (`.as_ptr()`,
//!    `.add(…)`, `as *mut _`, `&raw …`) hands provenance obligations to
//!    code outside the block; derive and consume the pointer in one block.

use crate::callgraph::CallGraph;
use crate::config;
use crate::diag::Diagnostic;
use crate::ir::WorkspaceIr;
use crate::lexer::{Tok, TokKind};
use crate::parser;

/// Below this many characters of justification, a SAFETY comment names
/// nothing ("fine", "ok", "see above").
const MIN_SAFETY_CHARS: usize = 20;

/// Tail-position methods that yield a raw pointer.
const PTR_PRODUCERS: &[&str] = &[
    "as_ptr",
    "as_mut_ptr",
    "add",
    "sub",
    "offset",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_offset",
    "cast",
];

/// Runs all three checks. Findings outside the rule's configured scope
/// are filtered by the caller.
pub fn run(ws: &WorkspaceIr, cg: &CallGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    trivial_safety(ws, &mut diags);
    target_feature_dispatch(ws, cg, &mut diags);
    escaping_pointers(ws, &mut diags);
    diags
}

/// Check 1: SAFETY comments must carry a justification clause. Directly
/// consecutive `//` continuation lines count toward the one comment.
fn trivial_safety(ws: &WorkspaceIr, diags: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        let comments = &file.lexed.comments;
        let mut i = 0;
        while i < comments.len() {
            let c = &comments[i];
            let Some(pos) = c.text.find("SAFETY:") else {
                i += 1;
                continue;
            };
            let mut text = c.text[pos + "SAFETY:".len()..]
                .trim_end_matches("*/")
                .trim()
                .to_string();
            let mut last_end = c.end_line;
            let mut j = i + 1;
            while j < comments.len() {
                let n = &comments[j];
                let continuation = n.line == last_end + 1
                    && !n.text.contains("SAFETY:")
                    && n.text.starts_with("//")
                    && !n.text.starts_with("///")
                    && !n.text.starts_with("//!");
                if !continuation {
                    break;
                }
                text.push(' ');
                text.push_str(n.text.trim_start_matches('/').trim());
                last_end = n.end_line;
                j += 1;
            }
            if text.len() < MIN_SAFETY_CHARS && !is_test_line(file, c.line) {
                diags.push(Diagnostic {
                    path: file.path.clone(),
                    line: c.line,
                    col: c.col,
                    rule: config::UNSAFE_PROVENANCE,
                    message: format!(
                        "SAFETY comment does not name the invariant it relies on \
                         (`SAFETY: {text}`); state which guarantee makes the unsafe \
                         code sound"
                    ),
                });
            }
            i = j;
        }
    }
}

fn is_test_line(file: &crate::ir::FileIr, line: u32) -> bool {
    match file.lexed.tokens.iter().position(|t| t.line >= line) {
        Some(ix) => file.test_mask.get(ix).copied().unwrap_or(false),
        None => false,
    }
}

/// Check 2: every resolved call into a `#[target_feature]` fn must come
/// from a function that is itself `#[target_feature]`, or that sees an
/// `is_x86_feature_detected!` check — lexically, or in one directly
/// called predicate (the `simd_available()` indirection).
fn target_feature_dispatch(ws: &WorkspaceIr, cg: &CallGraph, diags: &mut Vec<Diagnostic>) {
    let is_tf = |id: usize| -> bool {
        ws.fns[id]
            .attrs
            .iter()
            .any(|a| a.contains("target_feature"))
    };
    if !(0..ws.fns.len()).any(is_tf) {
        return;
    }
    let detects: Vec<bool> = (0..ws.fns.len())
        .map(|id| {
            cg.calls[id]
                .iter()
                .any(|c| c.is_macro && c.name == "is_x86_feature_detected")
        })
        .collect();
    for (caller, f) in ws.fns.iter().enumerate() {
        if f.is_test || is_tf(caller) {
            continue;
        }
        if detects[caller] || cg.edges[caller].iter().any(|&m| detects[m]) {
            continue;
        }
        let file = ws.file_of(caller);
        for c in cg.calls[caller].iter().filter(|c| !c.is_macro) {
            let hits_tf = cg.edges[caller]
                .iter()
                .any(|&t| is_tf(t) && ws.fns[t].name == c.name);
            if hits_tf {
                diags.push(Diagnostic {
                    path: file.path.clone(),
                    line: c.line,
                    col: c.col,
                    rule: config::UNSAFE_PROVENANCE,
                    message: format!(
                        "call to `#[target_feature]` fn `{}` outside an \
                         `is_x86_feature_detected!` dispatch; on a CPU without the \
                         feature this is undefined behaviour",
                        c.name
                    ),
                });
            }
        }
    }
}

/// Check 3: `unsafe` blocks in value position must not evaluate to a raw
/// pointer.
fn escaping_pointers(ws: &WorkspaceIr, diags: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        let toks = &file.lexed.tokens;
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokKind::Ident || t.text != "unsafe" {
                continue;
            }
            if file.test_mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            if !toks
                .get(i + 1)
                .is_some_and(|n| n.kind == TokKind::Punct('{'))
            {
                continue; // `unsafe fn` / `unsafe impl`, handled elsewhere
            }
            // Value position: the block's result is bound, passed, or
            // returned. Statement-position blocks keep their pointer local.
            let value_pos = i.checked_sub(1).map(|p| &toks[p]).is_some_and(|p| {
                matches!(
                    p.kind,
                    TokKind::Punct('=') | TokKind::Punct('(') | TokKind::Punct(',')
                ) || (p.kind == TokKind::Ident && p.text == "return")
            });
            if !value_pos {
                continue;
            }
            let open = i + 1;
            let close = parser::match_brace(toks, open);
            // Tail expression: everything after the last statement-level `;`.
            let mut tail_start = open + 1;
            let mut braces = 0usize;
            let mut delim = 0usize;
            for (j, tok) in toks.iter().enumerate().take(close).skip(open + 1) {
                match tok.kind {
                    TokKind::Punct('{') => braces += 1,
                    TokKind::Punct('}') => braces = braces.saturating_sub(1),
                    TokKind::Punct('(') | TokKind::Punct('[') => delim += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => delim = delim.saturating_sub(1),
                    TokKind::Punct(';') if braces == 0 && delim == 0 => tail_start = j + 1,
                    _ => {}
                }
            }
            let tail = &toks[tail_start..close.min(toks.len())];
            if !tail.is_empty() && produces_raw_pointer(tail) {
                diags.push(Diagnostic {
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    rule: config::UNSAFE_PROVENANCE,
                    message: "raw pointer derived in this `unsafe` block escapes it; derive \
                              and consume the pointer inside one block so the provenance \
                              argument stays local"
                        .into(),
                });
            }
        }
    }
}

/// Does this tail expression evaluate to a raw pointer? Reference-producing
/// tails (`&…`, `&mut *p`, `from_raw_parts(...)`) do not; a top-level
/// `as *`, an `&raw` borrow, or a final pointer-arithmetic method does.
fn produces_raw_pointer(tail: &[Tok]) -> bool {
    if tail[0].kind == TokKind::Punct('&') {
        return tail
            .get(1)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == "raw");
    }
    let mut delim = 0usize;
    let mut last_method: Option<&str> = None;
    let mut as_raw_cast = false;
    for (j, t) in tail.iter().enumerate() {
        match t.kind {
            TokKind::Punct('(') | TokKind::Punct('[') => delim += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => delim = delim.saturating_sub(1),
            TokKind::Punct('.') if delim == 0 => {
                if let Some(n) = tail.get(j + 1).filter(|n| n.kind == TokKind::Ident) {
                    last_method = Some(n.text.as_str());
                }
            }
            TokKind::Ident
                if delim == 0
                    && t.text == "as"
                    && tail
                        .get(j + 1)
                        .is_some_and(|n| n.kind == TokKind::Punct('*')) =>
            {
                as_raw_cast = true;
            }
            _ => {}
        }
    }
    as_raw_cast || last_method.is_some_and(|m| PTR_PRODUCERS.contains(&m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::ir::WorkspaceIr;

    fn pass(src: &str) -> Vec<Diagnostic> {
        let ws = WorkspaceIr::build(&[("crates/tensor/src/a.rs".to_string(), src.to_string())]);
        let cg = CallGraph::build(&ws);
        run(&ws, &cg)
    }

    #[test]
    fn trivial_safety_comment_is_flagged_substantive_is_not() {
        let d = pass(
            "// SAFETY: fine.\nfn a() { unsafe { go() } }\n\
             // SAFETY: `i < len` is upheld by the loop bound two lines above.\n\
             fn b() { unsafe { go() } }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("does not name the invariant"));
    }

    #[test]
    fn multi_line_safety_comment_counts_all_lines() {
        let d = pass(
            "// SAFETY: ok —\n// the caller checked AVX2 support and the slices\n\
             // are all the same length by construction.\nfn a() { unsafe { go() } }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn target_feature_call_needs_a_dispatch_site() {
        let src = "#[target_feature(enable = \"avx2\")]\n\
             // SAFETY: caller must verify AVX2 support before entry.\n\
             unsafe fn kernel(x: &mut [f32]) {}\n\
             fn available() -> bool { is_x86_feature_detected!(\"avx2\") }\n\
             fn guarded(x: &mut [f32]) { if available() { unsafe { kernel(x) } } }\n\
             fn inline_guard(x: &mut [f32]) { if is_x86_feature_detected!(\"avx2\") \
             { unsafe { kernel(x) } } }\n\
             fn unguarded(x: &mut [f32]) { unsafe { kernel(x) } }\n";
        let d = pass(src);
        let tf: Vec<_> = d
            .iter()
            .filter(|x| x.message.contains("target_feature"))
            .collect();
        assert_eq!(tf.len(), 1, "{d:?}");
        assert_eq!(tf[0].line, 7, "only the unguarded call site");
    }

    #[test]
    fn escaping_pointer_tails_are_flagged_references_are_not() {
        let src = "// SAFETY: base is valid for len elements per the shard split.\n\
             fn esc(b: &B) { let p = unsafe { b.base.as_ptr().add(1) }; }\n\
             // SAFETY: same shard-split argument as above, reconstituted view.\n\
             fn refs(b: &B) { let s = unsafe { std::slice::from_raw_parts(b.p, b.n) }; }\n\
             // SAFETY: exclusive by the strided piece assignment.\n\
             fn refmut(b: &B) { let s = unsafe { &mut *b.cell.get().add(2) }; }\n\
             // SAFETY: cast is a no-op layout-wise, consumed immediately.\n\
             fn stmt(b: &B) { unsafe { use_ptr(b.x.as_ptr()); } }\n";
        let d = pass(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("escapes"));
    }

    #[test]
    fn as_cast_to_raw_pointer_escaping_is_flagged() {
        let d = pass(
            "// SAFETY: alignment verified by the constructor invariant.\n\
             fn esc(b: &B) { let p = unsafe { b.addr as *mut f32 }; }\n",
        );
        assert_eq!(d.len(), 1, "{d:?}");
    }
}
