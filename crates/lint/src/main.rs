//! The `armor-lint` binary: lints the workspace and exits non-zero on any
//! finding, so it composes into `scripts/check.sh`.
//!
//! ```text
//! armor-lint [--json] [--root DIR] [--scope RULE=PREFIX[,PREFIX…]] [FILE…]
//! ```
//!
//! With no `FILE` arguments every workspace `.rs` file under
//! `<root>/crates` is linted (build output, `vendor/` stand-ins, and the
//! fixture corpus are skipped). `--scope` replaces one rule's include
//! prefixes for ad-hoc runs; the defaults encode the workspace contracts.

use std::path::PathBuf;
use std::process::ExitCode;

use lint::{diag, walk, Config};

const USAGE: &str = "usage: armor-lint [--json] [--root DIR] \
                     [--scope RULE=PREFIX[,PREFIX...]] [FILE...]";

struct Cli {
    json: bool,
    root: PathBuf,
    files: Vec<PathBuf>,
    config: Config,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        json: false,
        root: PathBuf::from("."),
        files: Vec::new(),
        config: Config::workspace_default(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => cli.json = true,
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory")?;
                cli.root = PathBuf::from(dir);
            }
            "--scope" => {
                let spec = it.next().ok_or("--scope needs RULE=PREFIX[,PREFIX...]")?;
                let (rule, prefixes) = spec
                    .split_once('=')
                    .ok_or("--scope needs RULE=PREFIX[,PREFIX...]")?;
                let prefixes: Vec<String> =
                    prefixes.split(',').map(|p| p.trim().to_string()).collect();
                cli.config
                    .set_include(rule, prefixes)
                    .map_err(|r| format!("--scope: unknown rule `{r}`"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            file => cli.files.push(PathBuf::from(file)),
        }
    }
    Ok(cli)
}

fn run(cli: &Cli) -> std::io::Result<Vec<lint::Diagnostic>> {
    if cli.files.is_empty() {
        return lint::lint_workspace(&cli.root, &cli.config);
    }
    let mut diags = Vec::new();
    for file in &cli.files {
        let rel = walk::relative_display(&cli.root, file);
        let src = std::fs::read_to_string(file)?;
        diags.extend(lint::lint_source(&rel, &src, &cli.config));
    }
    diag::sort(&mut diags);
    Ok(diags)
}

fn file_count(cli: &Cli) -> usize {
    if cli.files.is_empty() {
        walk::workspace_files(&cli.root).map_or(0, |f| f.len())
    } else {
        cli.files.len()
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let diags = match run(&cli) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("armor-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cli.json {
        print!("{}", diag::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
    }
    if diags.is_empty() {
        if !cli.json {
            println!("armor-lint: clean ({} files)", file_count(&cli));
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("armor-lint: {} finding(s)", diags.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flags_parse() {
        let cli = parse_args(&s(&["--json", "--root", "/tmp", "a.rs"])).unwrap();
        assert!(cli.json);
        assert_eq!(cli.root, PathBuf::from("/tmp"));
        assert_eq!(cli.files, [PathBuf::from("a.rs")]);
    }

    #[test]
    fn scope_override_parses_and_unknown_flag_rejected() {
        let cli = parse_args(&s(&["--scope", "no-panic-in-io=crates/nn/src"])).unwrap();
        assert!(cli.config.no_panic_in_io.covers("crates/nn/src/train.rs"));
        assert!(parse_args(&s(&["--bogus"])).is_err());
        assert!(parse_args(&s(&["--scope", "nope=crates/"])).is_err());
    }
}
