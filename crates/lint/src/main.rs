//! The `armor-lint` binary: lints the workspace so it composes into
//! `scripts/check.sh`.
//!
//! ```text
//! armor-lint [--json | --sarif] [--root DIR] [--scope RULE=PREFIX[,PREFIX…]]
//!            [--baseline FILE [--write-baseline]] [FILE…]
//! ```
//!
//! With no `FILE` arguments every workspace `.rs` file under
//! `<root>/crates` is linted (build output, `vendor/` stand-ins, and the
//! fixture corpus are skipped). `--scope` replaces one rule's include
//! prefixes for ad-hoc runs; the defaults encode the workspace contracts.
//!
//! With `--baseline` the gate fails only on findings *not* recorded in
//! the baseline file, and prints the delta (new / known / resolved);
//! `--write-baseline` regenerates the file from the current run instead.
//!
//! Exit codes: `0` clean (or no new findings vs the baseline), `1`
//! findings, `2` internal error or bad arguments.

use std::path::PathBuf;
use std::process::ExitCode;

use lint::{baseline, diag, sarif, walk, Config};

const USAGE: &str = "usage: armor-lint [--json | --sarif] [--root DIR] \
                     [--scope RULE=PREFIX[,PREFIX...]] \
                     [--baseline FILE [--write-baseline]] [FILE...]";

/// Findings exist (or new-vs-baseline findings exist).
const EXIT_FINDINGS: u8 = 1;
/// Bad arguments, unreadable files, or a corrupt baseline.
const EXIT_ERROR: u8 = 2;

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Cli {
    format: Format,
    root: PathBuf,
    files: Vec<PathBuf>,
    baseline: Option<PathBuf>,
    write_baseline: bool,
    config: Config,
}

enum ArgsOutcome {
    Run(Box<Cli>),
    Help,
}

fn parse_args(args: &[String]) -> Result<ArgsOutcome, String> {
    let mut cli = Cli {
        format: Format::Text,
        root: PathBuf::from("."),
        files: Vec::new(),
        baseline: None,
        write_baseline: false,
        config: Config::workspace_default(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => cli.format = Format::Json,
            "--sarif" => cli.format = Format::Sarif,
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory")?;
                cli.root = PathBuf::from(dir);
            }
            "--baseline" => {
                let file = it.next().ok_or("--baseline needs a file")?;
                cli.baseline = Some(PathBuf::from(file));
            }
            "--write-baseline" => cli.write_baseline = true,
            "--scope" => {
                let spec = it.next().ok_or("--scope needs RULE=PREFIX[,PREFIX...]")?;
                let (rule, prefixes) = spec
                    .split_once('=')
                    .ok_or("--scope needs RULE=PREFIX[,PREFIX...]")?;
                let prefixes: Vec<String> =
                    prefixes.split(',').map(|p| p.trim().to_string()).collect();
                cli.config
                    .set_include(rule, prefixes)
                    .map_err(|r| format!("--scope: unknown rule `{r}`"))?;
            }
            "--help" | "-h" => return Ok(ArgsOutcome::Help),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n{USAGE}"));
            }
            file => cli.files.push(PathBuf::from(file)),
        }
    }
    if cli.write_baseline && cli.baseline.is_none() {
        return Err("--write-baseline needs --baseline FILE to name the file".to_string());
    }
    Ok(ArgsOutcome::Run(Box::new(cli)))
}

fn run(cli: &Cli) -> std::io::Result<Vec<lint::Diagnostic>> {
    if cli.files.is_empty() {
        return lint::lint_workspace(&cli.root, &cli.config);
    }
    let mut files = Vec::new();
    for file in &cli.files {
        let rel = walk::relative_display(&cli.root, file);
        let src = std::fs::read_to_string(file)?;
        files.push((rel, src));
    }
    Ok(lint::analyze_sources(&files, &cli.config))
}

fn file_count(cli: &Cli) -> usize {
    if cli.files.is_empty() {
        walk::workspace_files(&cli.root).map_or(0, |f| f.len())
    } else {
        cli.files.len()
    }
}

/// `3 finding(s) [lock-order: 2, condvar-wait-loop: 1]` — counts per rule,
/// sorted by rule id for deterministic CI logs.
fn per_rule_summary(diags: &[lint::Diagnostic]) -> String {
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for d in diags {
        *counts.entry(d.rule).or_default() += 1;
    }
    if counts.is_empty() {
        return "0 finding(s)".to_string();
    }
    let parts: Vec<String> = counts.iter().map(|(r, n)| format!("{r}: {n}")).collect();
    format!("{} finding(s) [{}]", diags.len(), parts.join(", "))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(ArgsOutcome::Run(cli)) => cli,
        Ok(ArgsOutcome::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let diags = match run(&cli) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("armor-lint: {e}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    match cli.format {
        Format::Json => print!("{}", diag::to_json(&diags)),
        Format::Sarif => print!("{}", sarif::to_sarif(&diags)),
        Format::Text => {}
    }
    // Baseline modes: regenerate, or diff and gate on new findings only.
    if let Some(path) = &cli.baseline {
        if cli.write_baseline {
            if let Err(e) = std::fs::write(path, baseline::render(&diags)) {
                eprintln!("armor-lint: writing {}: {e}", path.display());
                return ExitCode::from(EXIT_ERROR);
            }
            eprintln!(
                "armor-lint: baseline written to {} ({} finding(s))",
                path.display(),
                diags.len()
            );
            return ExitCode::SUCCESS;
        }
        let base = match std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))
            .and_then(|text| baseline::parse(&text))
        {
            Ok(base) => base,
            Err(e) => {
                eprintln!("armor-lint: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        };
        let delta = baseline::diff(&diags, &base);
        if cli.format == Format::Text {
            for d in &delta.new {
                println!("{d}");
            }
        }
        eprintln!(
            "armor-lint: {} new vs baseline ({} known, {} resolved)",
            per_rule_summary(&delta.new),
            delta.known,
            delta.resolved
        );
        return if delta.new.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(EXIT_FINDINGS)
        };
    }
    if cli.format == Format::Text {
        for d in &diags {
            println!("{d}");
        }
    }
    if diags.is_empty() {
        if cli.format == Format::Text {
            println!("armor-lint: clean ({} files)", file_count(&cli));
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("armor-lint: {}", per_rule_summary(&diags));
        ExitCode::from(EXIT_FINDINGS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn parsed(v: &[&str]) -> Cli {
        match parse_args(&s(v)).unwrap() {
            ArgsOutcome::Run(cli) => *cli,
            ArgsOutcome::Help => panic!("unexpected --help"),
        }
    }

    #[test]
    fn flags_parse() {
        let cli = parsed(&["--json", "--root", "/tmp", "a.rs"]);
        assert!(cli.format == Format::Json);
        assert_eq!(cli.root, PathBuf::from("/tmp"));
        assert_eq!(cli.files, [PathBuf::from("a.rs")]);
        let cli = parsed(&["--sarif", "--baseline", "b.json"]);
        assert!(cli.format == Format::Sarif);
        assert_eq!(cli.baseline, Some(PathBuf::from("b.json")));
    }

    #[test]
    fn scope_override_parses_and_unknown_flag_rejected() {
        let cli = parsed(&["--scope", "no-panic-in-io=crates/nn/src"]);
        assert!(cli.config.no_panic_in_io.covers("crates/nn/src/train.rs"));
        assert!(parse_args(&s(&["--bogus"])).is_err());
        assert!(parse_args(&s(&["--scope", "nope=crates/"])).is_err());
    }

    #[test]
    fn write_baseline_requires_baseline_path() {
        assert!(parse_args(&s(&["--write-baseline"])).is_err());
        let cli = parsed(&["--baseline", "b.json", "--write-baseline"]);
        assert!(cli.write_baseline);
    }

    #[test]
    fn per_rule_summary_is_sorted_and_counted() {
        let mk = |rule: &'static str| lint::Diagnostic {
            path: "a.rs".into(),
            line: 1,
            col: 1,
            rule,
            message: "m".into(),
        };
        let out = per_rule_summary(&[mk("z-rule"), mk("a-rule"), mk("z-rule")]);
        assert_eq!(out, "3 finding(s) [a-rule: 1, z-rule: 2]");
        assert_eq!(per_rule_summary(&[]), "0 finding(s)");
    }
}
