//! A minimal, self-contained Rust lexer: comment-, string-, and
//! raw-string-aware, producing a flat token stream with positions.
//!
//! The lexer does not try to be a parser. It only has to be precise about
//! the places where naive text search goes wrong — patterns inside string
//! literals, comments, raw strings, char literals, and lifetimes — so that
//! the rules in [`crate::rules`] can match token *sequences* without false
//! positives. Everything else (numbers, punctuation) is kept deliberately
//! coarse.

/// The coarse class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`foo`, `fn`, `Vec`, `r#type`).
    Ident,
    /// A single punctuation character (`.`, `[`, `:`, `!`, …).
    Punct(char),
    /// A string literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal (`1`, `0x2A`, `1.5e3`).
    Num,
    /// A lifetime (`'a`, `'static`, `'_`).
    Lifetime,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The token text; for [`TokKind::Str`] and [`TokKind::Char`] only the
    /// delimiters' *content* is irrelevant to the rules, so the text is left
    /// empty to keep the stream small.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

/// One comment (line or block) with the position of its opening delimiter.
/// Line comments keep their full text including the leading `//`; block
/// comments keep everything between `/*` and `*/`.
#[derive(Debug, Clone, PartialEq)]
pub struct Comment {
    /// Full comment text.
    pub text: String,
    /// 1-based line of the opening delimiter.
    pub line: u32,
    /// 1-based column of the opening delimiter.
    pub col: u32,
    /// 1-based line of the closing delimiter (equals `line` for `//`
    /// comments; larger for multi-line block comments).
    pub end_line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens, in source order.
    pub tokens: Vec<Tok>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat_ident(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    /// Consumes a `"…"`-style literal; the opening quote is already eaten.
    fn eat_string(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consumes a raw string starting after `r`; returns `true` if one was
    /// present (otherwise nothing is consumed and the caller lexes an
    /// identifier).
    fn eat_raw_string(&mut self) -> bool {
        let mut hashes = 0;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some('"') {
            return false;
        }
        for _ in 0..=hashes {
            self.bump();
        }
        // Scan for `"` followed by `hashes` hash marks.
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|k| self.peek(k) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        true
    }

    /// Consumes a char/byte literal; the opening `'` is already eaten.
    fn eat_char_literal(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }
}

/// Lexes `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    while let Some(c) = lx.peek(0) {
        let (line, col) = (lx.line, lx.col);
        let push = |out: &mut Lexed, kind: TokKind, text: String| {
            out.tokens.push(Tok {
                kind,
                text,
                line,
                col,
            });
        };
        match c {
            _ if c.is_whitespace() => {
                lx.bump();
            }
            '/' if lx.peek(1) == Some('/') => {
                let mut text = String::new();
                while let Some(k) = lx.peek(0) {
                    if k == '\n' {
                        break;
                    }
                    text.push(k);
                    lx.bump();
                }
                out.comments.push(Comment {
                    text,
                    line,
                    col,
                    end_line: line,
                });
            }
            '/' if lx.peek(1) == Some('*') => {
                lx.bump();
                lx.bump();
                let mut depth = 1usize;
                let mut text = String::new();
                while depth > 0 {
                    match (lx.peek(0), lx.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            text.push_str("/*");
                            lx.bump();
                            lx.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            lx.bump();
                            lx.bump();
                            if depth > 0 {
                                text.push_str("*/");
                            }
                        }
                        (Some(k), _) => {
                            text.push(k);
                            lx.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    text,
                    line,
                    col,
                    end_line: lx.line,
                });
            }
            '"' => {
                lx.bump();
                lx.eat_string();
                push(&mut out, TokKind::Str, String::new());
            }
            'r' => {
                // `r"…"` / `r#"…"#` are raw strings; `r#ident` is a raw
                // identifier; plain `r…` is an ordinary identifier.
                lx.bump();
                if lx.eat_raw_string() {
                    push(&mut out, TokKind::Str, String::new());
                } else if lx.peek(0) == Some('#')
                    && lx.peek(1).is_some_and(|k| k.is_alphanumeric() || k == '_')
                {
                    lx.bump();
                    let name = lx.eat_ident();
                    push(&mut out, TokKind::Ident, name);
                } else {
                    let mut name = String::from("r");
                    name.push_str(&lx.eat_ident());
                    push(&mut out, TokKind::Ident, name);
                }
            }
            'b' if matches!(lx.peek(1), Some('"') | Some('\'') | Some('r')) => {
                match lx.peek(1) {
                    Some('"') => {
                        lx.bump();
                        lx.bump();
                        lx.eat_string();
                        push(&mut out, TokKind::Str, String::new());
                    }
                    Some('\'') => {
                        lx.bump();
                        lx.bump();
                        lx.eat_char_literal();
                        push(&mut out, TokKind::Char, String::new());
                    }
                    _ => {
                        // `br"…"` or an identifier starting with `br`.
                        lx.bump();
                        lx.bump();
                        if lx.eat_raw_string() {
                            push(&mut out, TokKind::Str, String::new());
                        } else {
                            let mut name = String::from("br");
                            name.push_str(&lx.eat_ident());
                            push(&mut out, TokKind::Ident, name);
                        }
                    }
                }
            }
            '\'' => {
                // Disambiguate char literal from lifetime: `'x'` is a char,
                // `'ident` (no closing quote right after one ident char) is
                // a lifetime.
                let next = lx.peek(1);
                let after = lx.peek(2);
                if next == Some('\\') {
                    lx.bump();
                    lx.bump();
                    lx.bump();
                    lx.eat_char_literal();
                    push(&mut out, TokKind::Char, String::new());
                } else if next.is_some_and(|k| k.is_alphanumeric() || k == '_')
                    && after != Some('\'')
                {
                    lx.bump();
                    let name = lx.eat_ident();
                    push(&mut out, TokKind::Lifetime, name);
                } else {
                    lx.bump();
                    lx.eat_char_literal();
                    push(&mut out, TokKind::Char, String::new());
                }
            }
            _ if c.is_alphabetic() || c == '_' => {
                let name = lx.eat_ident();
                push(&mut out, TokKind::Ident, name);
            }
            _ if c.is_ascii_digit() => {
                let mut text = lx.eat_ident();
                // `1.5` continues the number; `1..n` does not.
                if lx.peek(0) == Some('.') && lx.peek(1).is_some_and(|k| k.is_ascii_digit()) {
                    text.push('.');
                    lx.bump();
                    text.push_str(&lx.eat_ident());
                }
                push(&mut out, TokKind::Num, text);
            }
            _ => {
                lx.bump();
                push(&mut out, TokKind::Punct(c), c.to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "unwrap() inside a string";
            // unwrap() inside a comment
            /* HashMap in /* nested */ block */
            let b = r#"Instant::now() in a raw string"#;
            let c = 'x';
            let d = b"vec![]";
        "##;
        let names = idents(src);
        assert!(!names.iter().any(|n| n == "unwrap"));
        assert!(!names.iter().any(|n| n == "HashMap"));
        assert!(!names.iter().any(|n| n == "Instant"));
        assert!(!names.iter().any(|n| n == "vec"));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'static str { x }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a", "static"]);
    }

    #[test]
    fn char_literals_including_escapes() {
        let toks = lex(r"let nl = '\n'; let q = '\''; let x = 'x'; let u = 'é';").tokens;
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Char).count(),
            4,
            "{toks:?}"
        );
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd").tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn numbers_swallow_float_dots_but_not_ranges() {
        let toks = lex("1.5 + 0..n + 0x2A").tokens;
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["1.5", "0", "0x2A"]);
    }
}
