//! SARIF 2.1.0 output — the interchange format CI annotation tooling
//! (GitHub code scanning, VS Code SARIF viewers) consumes. Hand-rolled
//! like the `--json` report so the lint crate stays dependency-free.

use crate::config;
use crate::diag::{escape_json, Diagnostic};

/// Renders `diags` as one SARIF 2.1.0 run. The driver's rule table lists
/// every suppressible rule plus the directive meta-rules, so a clean run
/// still advertises what was checked.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut out = String::with_capacity(2048 + diags.len() * 256);
    out.push_str(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"armor-lint\",\n          \
         \"informationUri\": \"DESIGN.md\",\n          \"rules\": [",
    );
    let meta = [
        config::BARE_ALLOW,
        config::UNKNOWN_RULE,
        config::UNKNOWN_DIRECTIVE,
    ];
    let all_rules = config::RULES.iter().chain(meta.iter());
    for (i, rule) in all_rules.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n            {{\"id\": \"{rule}\"}}"));
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \
             \"message\": {{\"text\": \"",
            d.rule
        ));
        escape_json(&d.message, &mut out);
        out.push_str("\"},\n          \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"");
        escape_json(&d.path, &mut out);
        out.push_str(&format!(
            "\"}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]\n        }}",
            d.line, d.col
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_has_schema_rules_and_result_locations() {
        let d = Diagnostic {
            path: "crates/x/src/a.rs".into(),
            line: 3,
            col: 7,
            rule: "lock-order",
            message: "say \"hi\"".into(),
        };
        let s = to_sarif(&[d]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"armor-lint\""));
        assert!(s.contains("{\"id\": \"lock-order\"}"));
        assert!(s.contains("{\"id\": \"transitive-determinism\"}"));
        assert!(s.contains("\"ruleId\": \"lock-order\""));
        assert!(s.contains("\"startLine\": 3"));
        assert!(s.contains("say \\\"hi\\\""));
    }

    #[test]
    fn empty_run_still_lists_every_rule() {
        let s = to_sarif(&[]);
        assert!(s.contains("\"results\": []"));
        for rule in crate::config::RULES {
            assert!(s.contains(&format!("{{\"id\": \"{rule}\"}}")), "{rule}");
        }
    }
}
