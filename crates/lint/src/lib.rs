//! `armor-lint`: workspace-specific static analysis for spiking-armor.
//!
//! The workspace rests on invariants no off-the-shelf tool checks —
//! bitwise-identical results at every thread count, fingerprinted run
//! artifacts that must never absorb wall-clock time or hash-map iteration
//! order, and steady-state hot loops that must not allocate. This crate
//! turns those contracts into a merge gate: a self-contained source-level
//! pass (own minimal lexer, no external parser dependencies) that walks
//! every workspace `.rs` file and enforces five rules:
//!
//! | rule | contract |
//! |------|----------|
//! | `no-panic-in-io` | `unwrap`/`expect`/`panic!`-family/`[idx]` indexing forbidden in `crates/store` and `crates/explore` non-test code |
//! | `wallclock-purity` | `Instant::now`/`SystemTime` forbidden where fingerprints, checkpoints, or journal payloads are produced |
//! | `unordered-iteration` | `HashMap`/`HashSet` forbidden in artifact-producing code |
//! | `no-alloc-in-hot-loop` | `Vec::new`/`vec!`/`.to_vec()`/`.clone()`/`.collect()` forbidden in `*_into` functions and `// armor-lint: hot`-marked functions |
//! | `unsafe-needs-safety-comment` | every `unsafe` needs a `// SAFETY:` comment directly above |
//!
//! Findings can be suppressed inline with a *justified* allow:
//!
//! ```text
//! // armor-lint: allow(no-panic-in-io) -- index bounded by the loop guard above
//! ```
//!
//! A bare allow (no ` -- justification`), an unknown rule id, or a typoed
//! directive is itself a diagnostic, so a suppression can never silently
//! rot. See `DESIGN.md` §10 for the full rule rationale.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod suppress;
pub mod walk;

pub use config::Config;
pub use diag::Diagnostic;
pub use rules::lint_source;

use std::path::Path;

/// Lints every workspace file under `root` with `config`, returning all
/// diagnostics in reporting order.
///
/// # Errors
///
/// Returns an [`std::io::Error`] if the tree cannot be walked or a file
/// cannot be read.
pub fn lint_workspace(root: &Path, config: &Config) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for file in walk::workspace_files(root)? {
        let rel = walk::relative_display(root, &file);
        let src = std::fs::read_to_string(&file)?;
        diags.extend(rules::lint_source(&rel, &src, config));
    }
    diag::sort(&mut diags);
    Ok(diags)
}
