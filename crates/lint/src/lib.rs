//! `armor-lint`: workspace-specific static analysis for spiking-armor.
//!
//! The workspace rests on invariants no off-the-shelf tool checks —
//! bitwise-identical results at every thread count, fingerprinted run
//! artifacts that must never absorb wall-clock time or hash-map iteration
//! order, steady-state hot loops that must not allocate, and a Condvar-
//! parked worker pool whose locks must never deadlock. This crate turns
//! those contracts into a merge gate: a self-contained analyzer (own
//! minimal lexer, item parser, and approximate call graph — no external
//! dependencies) that walks every workspace `.rs` file and enforces five
//! line-local rules plus four interprocedural passes:
//!
//! | rule | contract |
//! |------|----------|
//! | `no-panic-in-io` | `unwrap`/`expect`/`panic!`-family/`[idx]` indexing forbidden in `crates/store` and `crates/explore` non-test code |
//! | `wallclock-purity` | `Instant::now`/`SystemTime` forbidden where fingerprints, checkpoints, or journal payloads are produced |
//! | `unordered-iteration` | `HashMap`/`HashSet` forbidden in artifact-producing code |
//! | `no-alloc-in-hot-loop` | `Vec::new`/`vec!`/`.to_vec()`/`.clone()`/`.collect()` forbidden in `*_into` functions and `// armor-lint: hot`-marked functions |
//! | `unsafe-needs-safety-comment` | every `unsafe` needs a `// SAFETY:` comment directly above |
//! | `lock-order` | no lock-acquisition cycles; no blocking call (I/O, `Condvar::wait`) while another guard is live |
//! | `condvar-wait-loop` | every `Condvar::wait`/`wait_timeout` sits in a `while`-predicate loop |
//! | `unsafe-provenance` | SAFETY comments name their invariant; `#[target_feature]` fns are reached only through `is_x86_feature_detected!` dispatch; raw pointers do not escape their `unsafe` block |
//! | `transitive-determinism` | no call-graph path from a clock read or unordered map into an artifact writer |
//!
//! Findings can be suppressed inline with a *justified* allow:
//!
//! ```text
//! // armor-lint: allow(no-panic-in-io) -- index bounded by the loop guard above
//! ```
//!
//! A bare allow (no ` -- justification`), an unknown rule id, or a typoed
//! directive is itself a diagnostic, so a suppression can never silently
//! rot. See `DESIGN.md` §10 (line rules) and §15 (interprocedural passes,
//! baseline workflow) for the full rationale.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod callgraph;
pub mod condvar;
pub mod config;
pub mod diag;
pub mod interproc;
pub mod ir;
pub mod lexer;
pub mod lock_order;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod suppress;
pub mod unsafe_prov;
pub mod walk;

pub use config::Config;
pub use diag::Diagnostic;

use std::path::Path;

/// Analyzes a set of `(path, source)` pairs as one workspace: the
/// line-local rules per file, then the four interprocedural passes over
/// the shared IR and call graph. Paths must be workspace-relative with
/// forward slashes — they drive scope resolution and test-code detection.
pub fn analyze_sources(files: &[(String, String)], config: &Config) -> Vec<Diagnostic> {
    let ws = ir::WorkspaceIr::build(files);
    let cg = callgraph::CallGraph::build(&ws);
    let mut diags = Vec::new();
    for file in &ws.files {
        diags.extend(rules::lint_lexed(
            &file.path,
            &file.lexed,
            &file.directives,
            config,
        ));
        // Directive-grammar diagnostics are never suppressible.
        diags.extend(file.directives.diags.iter().cloned());
    }
    let passes = [
        lock_order::run(&ws),
        condvar::run(&ws),
        unsafe_prov::run(&ws, &cg),
        interproc::run(&ws, &cg),
    ];
    for d in passes.into_iter().flatten() {
        let Some(scope) = config.scope(d.rule) else {
            continue;
        };
        if !scope.covers(&d.path) {
            continue;
        }
        if scope.skip_test_code && config::path_is_test_code(&d.path) {
            continue;
        }
        if ws
            .file_by_path(&d.path)
            .is_some_and(|f| f.directives.allows(d.rule, d.line))
        {
            continue;
        }
        diags.push(d);
    }
    diag::sort(&mut diags);
    diags
}

/// Lints one file's source text under `config`, returning its diagnostics
/// in reporting order. Single-file convenience over [`analyze_sources`]:
/// the interprocedural passes run too, but only see this one file.
pub fn lint_source(path: &str, src: &str, config: &Config) -> Vec<Diagnostic> {
    analyze_sources(&[(path.to_string(), src.to_string())], config)
}

/// Lints every workspace file under `root` with `config`, returning all
/// diagnostics in reporting order. All files are analyzed together, so
/// the interprocedural passes see cross-file call paths.
///
/// # Errors
///
/// Returns an [`std::io::Error`] if the tree cannot be walked or a file
/// cannot be read.
pub fn lint_workspace(root: &Path, config: &Config) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for file in walk::workspace_files(root)? {
        let rel = walk::relative_display(root, &file);
        let src = std::fs::read_to_string(&file)?;
        files.push((rel, src));
    }
    Ok(analyze_sources(&files, config))
}
