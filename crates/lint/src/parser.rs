//! A lightweight item/block parser over the [`crate::lexer`] token stream.
//!
//! The interprocedural passes need just enough structure to reason about
//! functions: where each `fn` body starts and ends, which attributes it
//! carries, and which tokens are test code. This module recovers exactly
//! that by bracket matching — it is deliberately *not* a Rust parser.
//! Macros stay opaque token soup, types are skipped by delimiter counting,
//! and trait-method declarations without bodies have an empty body range.
//! DESIGN.md §15 lists the blind spots this implies.

use crate::lexer::{Tok, TokKind};

/// One parsed `fn` item. Nested functions each get their own entry; token
/// ownership is disambiguated later by [`crate::ir`]'s owner map (inner
/// function wins).
#[derive(Debug, Clone)]
pub struct RawFn {
    /// The function's simple name.
    pub name: String,
    /// Index of the `fn` keyword token.
    pub fn_tok: usize,
    /// Line of the name token — the anchor for per-function findings.
    pub line: u32,
    /// Column of the name token.
    pub col: u32,
    /// Flattened attribute bodies, e.g. `target_feature (enable = "avx2")`.
    pub attrs: Vec<String>,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Token range of the signature: from the `fn` keyword up to (excluding)
    /// the body's `{` or the terminating `;`.
    pub sig: std::ops::Range<usize>,
    /// Token range of the body between (excluding) its braces; empty when
    /// the declaration has no body.
    pub body: std::ops::Range<usize>,
}

/// Index of the `}` matching the `{` at `open` (or `tokens.len()` when the
/// stream is truncated).
pub(crate) fn match_brace(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// Walks back from the `fn` keyword over `pub(crate)`, `unsafe`, `const`,
/// `async`, `extern "C"` and stacked `#[…]` attributes, returning the
/// attribute bodies (outermost first) and whether the fn is `unsafe`.
fn leading_modifiers(tokens: &[Tok], fn_tok: usize) -> (Vec<String>, bool) {
    let mut attrs: Vec<String> = Vec::new();
    let mut is_unsafe = false;
    let mut k = fn_tok;
    while k > 0 {
        let prev = &tokens[k - 1];
        match prev.kind {
            TokKind::Ident
                if matches!(
                    prev.text.as_str(),
                    "pub" | "unsafe" | "const" | "async" | "extern" | "default"
                ) =>
            {
                if prev.text == "unsafe" {
                    is_unsafe = true;
                }
                k -= 1;
            }
            // The ABI string of `extern "C"`.
            TokKind::Str => k -= 1,
            TokKind::Punct(')') => {
                // `pub(crate)` / `pub(in …)`: skip to the matching `(`;
                // anything other than a visibility wrapper ends the header.
                let Some(open) = match_back(tokens, k - 1, '(', ')') else {
                    break;
                };
                if open >= 1
                    && tokens[open - 1].kind == TokKind::Ident
                    && tokens[open - 1].text == "pub"
                {
                    k = open;
                } else {
                    break;
                }
            }
            TokKind::Punct(']') => {
                // A stacked attribute `#[…]`.
                let Some(open) = match_back(tokens, k - 1, '[', ']') else {
                    break;
                };
                if open >= 1 && tokens[open - 1].kind == TokKind::Punct('#') {
                    let body: Vec<&str> = tokens[open + 1..k - 1]
                        .iter()
                        .map(|t| t.text.as_str())
                        .collect();
                    attrs.insert(0, body.join(" "));
                    k = open - 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    (attrs, is_unsafe)
}

/// Index of the `open` delimiter matching the `close` at `from`, scanning
/// backwards.
fn match_back(tokens: &[Tok], from: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = from;
    loop {
        if tokens[j].kind == TokKind::Punct(close) {
            depth += 1;
        } else if tokens[j].kind == TokKind::Punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
}

/// Extracts every `fn` item (including nested ones) in source order.
pub fn parse_fns(tokens: &[Tok]) -> Vec<RawFn> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        let is_fn = t.kind == TokKind::Ident
            && t.text == "fn"
            && tokens.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident);
        if !is_fn {
            i += 1;
            continue;
        }
        let name_tok = &tokens[i + 1];
        let (attrs, is_unsafe) = leading_modifiers(tokens, i);
        // The body is the first `{` outside the parameter list / return
        // type delimiters; a `;` there instead means a bodyless item.
        let mut j = i + 2;
        let mut delim = 0usize;
        let mut body = 0..0;
        while j < tokens.len() {
            match tokens[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => delim += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => delim = delim.saturating_sub(1),
                TokKind::Punct(';') if delim == 0 => break,
                TokKind::Punct('{') if delim == 0 => {
                    body = (j + 1)..match_brace(tokens, j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        fns.push(RawFn {
            name: name_tok.text.clone(),
            fn_tok: i,
            line: name_tok.line,
            col: name_tok.col,
            attrs,
            is_unsafe,
            sig: i..j.min(tokens.len()),
            body,
        });
        i += 2;
    }
    fns
}

/// Marks the token ranges covered by `#[test]` / `#[cfg(test)]` (and any
/// other attribute whose tokens mention `test`): from the attribute to the
/// end of the annotated item — its matching closing brace, or the first
/// statement-level `;` for brace-less items.
pub(crate) fn test_token_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind != TokKind::Punct('#') {
            i += 1;
            continue;
        }
        let start = i;
        let mut j = i + 1;
        if j < tokens.len() && tokens[j].kind == TokKind::Punct('!') {
            j += 1; // inner attribute `#![…]`
        }
        if j >= tokens.len() || tokens[j].kind != TokKind::Punct('[') {
            i += 1;
            continue;
        }
        // Collect the attribute body up to the matching `]`.
        let mut depth = 0usize;
        let mut is_test_attr = false;
        while j < tokens.len() {
            match tokens[j].kind {
                TokKind::Punct('[') => depth += 1,
                TokKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                TokKind::Ident if tokens[j].text == "test" => is_test_attr = true,
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        while j + 1 < tokens.len()
            && tokens[j].kind == TokKind::Punct('#')
            && tokens[j + 1].kind == TokKind::Punct('[')
        {
            let mut d = 0usize;
            j += 1;
            while j < tokens.len() {
                match tokens[j].kind {
                    TokKind::Punct('[') => d += 1,
                    TokKind::Punct(']') => {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // The annotated item runs to its matching `}` (tracking nesting),
        // or to the first `;` outside any braces/parens for `use …;` etc.
        let mut braces = 0usize;
        let mut parens = 0usize;
        let mut end = tokens.len();
        while j < tokens.len() {
            match tokens[j].kind {
                TokKind::Punct('{') => braces += 1,
                TokKind::Punct('}') => {
                    braces = braces.saturating_sub(1);
                    if braces == 0 {
                        end = j + 1;
                        break;
                    }
                }
                TokKind::Punct('(') => parens += 1,
                TokKind::Punct(')') => parens = parens.saturating_sub(1),
                TokKind::Punct(';') if braces == 0 && parens == 0 => {
                    end = j + 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for m in mask.iter_mut().take(end.min(tokens.len())).skip(start) {
            *m = true;
        }
        i = end.min(tokens.len());
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<RawFn> {
        parse_fns(&lex(src).tokens)
    }

    #[test]
    fn extracts_names_attrs_and_bodies() {
        let src = "#[inline]\n#[target_feature(enable = \"avx2\")]\n\
                   pub(crate) unsafe fn kernel(x: &mut [f32]) { x[0] = 1.0; }\n\
                   fn plain() -> u32 { 7 }\n\
                   trait T { fn decl(&self); }\n";
        let f = fns(src);
        assert_eq!(f.len(), 3, "{f:?}");
        assert_eq!(f[0].name, "kernel");
        assert!(f[0].is_unsafe);
        assert_eq!(f[0].attrs.len(), 2);
        assert!(f[0].attrs[1].contains("target_feature"));
        assert!(!f[0].body.is_empty());
        assert_eq!(f[1].name, "plain");
        assert!(!f[1].is_unsafe);
        assert_eq!(f[2].name, "decl");
        assert!(f[2].body.is_empty(), "bodyless trait method");
    }

    #[test]
    fn nested_fns_are_both_found() {
        let f = fns("fn outer() { fn inner() { work(); } inner(); }");
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].name, "outer");
        assert_eq!(f[1].name, "inner");
        // inner's body is contained in outer's
        assert!(f[0].body.start < f[1].body.start && f[1].body.end <= f[0].body.end);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let f = fns("fn takes(cb: fn(u32) -> u32) { cb(1); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "takes");
    }
}
