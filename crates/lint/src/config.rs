//! Rule identifiers and per-rule scope configuration.
//!
//! Each rule carries its own scope: the path prefixes it applies to and
//! whether test code (a `tests/`, `benches/` or `examples/` path component,
//! a `#[cfg(test)]` module, or a `#[test]` function) is exempt. The
//! [`Config::workspace_default`] scopes encode this repository's contracts;
//! the binary can override any rule's prefixes with `--scope`.

/// Rule: `unwrap()`/`expect()`/`panic!`-family macros/`[idx]` indexing are
/// forbidden in I/O-facing code — a corrupt run directory must surface as a
/// typed error, never a crash.
pub const NO_PANIC_IN_IO: &str = "no-panic-in-io";
/// Rule: `Instant::now`/`SystemTime` are forbidden where fingerprints,
/// checkpoints, or `events.jsonl` payloads are produced.
pub const WALLCLOCK_PURITY: &str = "wallclock-purity";
/// Rule: `HashMap`/`HashSet` are forbidden in artifact-producing code;
/// their iteration order is nondeterministic across runs.
pub const UNORDERED_ITERATION: &str = "unordered-iteration";
/// Rule: allocation (`Vec::new`, `vec!`, `.to_vec()`, `.clone()`,
/// `.collect()`) is forbidden inside hot functions — names ending in
/// `_into` or carrying a `// armor-lint: hot` marker.
pub const NO_ALLOC_IN_HOT_LOOP: &str = "no-alloc-in-hot-loop";
/// Rule: every `unsafe` needs a `// SAFETY:` comment directly above it.
pub const UNSAFE_NEEDS_SAFETY_COMMENT: &str = "unsafe-needs-safety-comment";
/// Rule (interprocedural): lock-acquisition cycles and blocking calls
/// (I/O, `Condvar::wait`) made while a mutex guard is live.
pub const LOCK_ORDER: &str = "lock-order";
/// Rule (interprocedural): `Condvar::wait`/`wait_timeout` must sit inside
/// a `while`-predicate loop — condition variables wake spuriously.
pub const CONDVAR_WAIT_LOOP: &str = "condvar-wait-loop";
/// Rule (interprocedural): SAFETY comments must name their invariant,
/// `#[target_feature]` fns need an `is_x86_feature_detected!` dispatch
/// site, raw pointers derived in `unsafe` blocks must not escape them.
pub const UNSAFE_PROVENANCE: &str = "unsafe-provenance";
/// Rule (interprocedural): no call-graph path from `Instant::now`/
/// `SystemTime`/`HashMap` into a fingerprint/checkpoint/journal/metrics
/// writer.
pub const TRANSITIVE_DETERMINISM: &str = "transitive-determinism";

/// Meta-rule: an `armor-lint: allow(...)` without a `-- justification`.
pub const BARE_ALLOW: &str = "bare-allow";
/// Meta-rule: a directive naming a rule that does not exist.
pub const UNKNOWN_RULE: &str = "unknown-rule";
/// Meta-rule: a comment that looks like a directive but does not parse.
pub const UNKNOWN_DIRECTIVE: &str = "unknown-directive";

/// The nine suppressible rules, in documentation order: five line-local,
/// four interprocedural.
pub const RULES: [&str; 9] = [
    NO_PANIC_IN_IO,
    WALLCLOCK_PURITY,
    UNORDERED_ITERATION,
    NO_ALLOC_IN_HOT_LOOP,
    UNSAFE_NEEDS_SAFETY_COMMENT,
    LOCK_ORDER,
    CONDVAR_WAIT_LOOP,
    UNSAFE_PROVENANCE,
    TRANSITIVE_DETERMINISM,
];

/// Where one rule applies.
#[derive(Debug, Clone)]
pub struct RuleScope {
    /// Workspace-relative path prefixes (forward slashes). A file is in
    /// scope when its path starts with any of these. Empty = nowhere.
    pub include: Vec<String>,
    /// Path prefixes carved *out* of the include set; an excluded file is
    /// never in scope. Lets a rule cover `crates/` while exempting one
    /// subtree whose job contradicts the rule (e.g. the serve-bench
    /// binary, whose artifact *is* a latency report, under
    /// `transitive-determinism`).
    pub exclude: Vec<String>,
    /// When `true`, findings inside test code are dropped.
    pub skip_test_code: bool,
}

impl RuleScope {
    /// `true` when `path` (workspace-relative, forward slashes) is covered.
    pub fn covers(&self, path: &str) -> bool {
        self.include.iter().any(|p| path.starts_with(p.as_str()))
            && !self.exclude.iter().any(|p| path.starts_with(p.as_str()))
    }
}

/// The full per-rule scope configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Scope of [`NO_PANIC_IN_IO`].
    pub no_panic_in_io: RuleScope,
    /// Scope of [`WALLCLOCK_PURITY`].
    pub wallclock_purity: RuleScope,
    /// Scope of [`UNORDERED_ITERATION`].
    pub unordered_iteration: RuleScope,
    /// Scope of [`NO_ALLOC_IN_HOT_LOOP`].
    pub no_alloc_in_hot_loop: RuleScope,
    /// Scope of [`UNSAFE_NEEDS_SAFETY_COMMENT`].
    pub unsafe_needs_safety_comment: RuleScope,
    /// Scope of [`LOCK_ORDER`].
    pub lock_order: RuleScope,
    /// Scope of [`CONDVAR_WAIT_LOOP`].
    pub condvar_wait_loop: RuleScope,
    /// Scope of [`UNSAFE_PROVENANCE`].
    pub unsafe_provenance: RuleScope,
    /// Scope of [`TRANSITIVE_DETERMINISM`].
    pub transitive_determinism: RuleScope,
}

impl Config {
    /// This repository's contracts:
    ///
    /// * `no-panic-in-io` — the run store and everything driving it
    ///   (`crates/store`, `crates/explore`), plus the serving layer
    ///   (`crates/serve`): a damaged run directory or a malformed network
    ///   frame must degrade per the PR 2 contract, not crash.
    /// * `wallclock-purity` — the same crates plus `crates/obs`: the
    ///   metrics layer's deterministic sections must never observe a clock
    ///   (its timing sink carries the one justified allow).
    /// * `unordered-iteration` — the same crates plus `crates/obs` and
    ///   `crates/serve`: artifacts (including `metrics.json` and
    ///   `BENCH_serve.json`) must be byte-stable across runs.
    /// * `no-alloc-in-hot-loop` — everywhere: hot functions are named
    ///   `*_into` or marked `// armor-lint: hot` wherever they live.
    /// * `unsafe-needs-safety-comment` — everywhere, test code included;
    ///   with `#![forbid(unsafe_code)]` on every other crate this polices
    ///   `crates/tensor` in practice.
    pub fn workspace_default() -> Self {
        let artifact_scope = || RuleScope {
            include: vec!["crates/store/src".into(), "crates/explore/src".into()],
            exclude: vec![],
            skip_test_code: true,
        };
        // The serving layer faces the network: every malformed frame and
        // full queue must come back as a typed response, never a panic, and
        // its bench artifact must be byte-stable. It is NOT in the
        // wallclock-purity scope — measuring request latency is its job;
        // the readings stay quarantined in the obs timing sink.
        let serve_scope = |base: RuleScope| RuleScope {
            include: base
                .include
                .into_iter()
                .chain(std::iter::once("crates/serve/src".into()))
                .collect(),
            ..base
        };
        // The metrics layer produces `metrics.json`; it is artifact code for
        // the determinism rules, but its recording errors are programmer
        // errors, not I/O degradation, so `no-panic-in-io` stays off it.
        let metrics_scope = |base: RuleScope| RuleScope {
            include: base
                .include
                .into_iter()
                .chain(std::iter::once("crates/obs/src".into()))
                .collect(),
            ..base
        };
        Self {
            no_panic_in_io: serve_scope(artifact_scope()),
            wallclock_purity: metrics_scope(artifact_scope()),
            unordered_iteration: serve_scope(metrics_scope(artifact_scope())),
            no_alloc_in_hot_loop: RuleScope {
                include: vec!["crates/".into()],
                exclude: vec![],
                skip_test_code: true,
            },
            unsafe_needs_safety_comment: RuleScope {
                include: vec!["crates/".into()],
                exclude: vec![],
                skip_test_code: false,
            },
            // The concurrency passes cover every crate: a lock-order cycle
            // or un-looped Condvar wait is a bug wherever it lives.
            lock_order: RuleScope {
                include: vec!["crates/".into()],
                exclude: vec![],
                skip_test_code: true,
            },
            condvar_wait_loop: RuleScope {
                include: vec!["crates/".into()],
                exclude: vec![],
                skip_test_code: true,
            },
            // `crates/tensor` is the only unsafe-capable crate; the
            // provenance checks are meaningless elsewhere.
            unsafe_provenance: RuleScope {
                include: vec!["crates/tensor/src".into()],
                exclude: vec![],
                skip_test_code: true,
            },
            // Workspace-wide, minus the serve-bench binary: its committed
            // artifact IS a latency report, so wall-clock readings reaching
            // its writers are the whole point.
            transitive_determinism: RuleScope {
                include: vec!["crates/".into()],
                exclude: vec!["crates/serve/src/bin".into()],
                skip_test_code: true,
            },
        }
    }

    /// The scope of a rule by id, if `rule` names one.
    pub fn scope(&self, rule: &str) -> Option<&RuleScope> {
        match rule {
            NO_PANIC_IN_IO => Some(&self.no_panic_in_io),
            WALLCLOCK_PURITY => Some(&self.wallclock_purity),
            UNORDERED_ITERATION => Some(&self.unordered_iteration),
            NO_ALLOC_IN_HOT_LOOP => Some(&self.no_alloc_in_hot_loop),
            UNSAFE_NEEDS_SAFETY_COMMENT => Some(&self.unsafe_needs_safety_comment),
            LOCK_ORDER => Some(&self.lock_order),
            CONDVAR_WAIT_LOOP => Some(&self.condvar_wait_loop),
            UNSAFE_PROVENANCE => Some(&self.unsafe_provenance),
            TRANSITIVE_DETERMINISM => Some(&self.transitive_determinism),
            _ => None,
        }
    }

    /// Replaces one rule's include prefixes (the `--scope` CLI override).
    ///
    /// # Errors
    ///
    /// Returns `Err` with the offending id when `rule` is not a rule.
    pub fn set_include(&mut self, rule: &str, prefixes: Vec<String>) -> Result<(), String> {
        let scope = match rule {
            NO_PANIC_IN_IO => &mut self.no_panic_in_io,
            WALLCLOCK_PURITY => &mut self.wallclock_purity,
            UNORDERED_ITERATION => &mut self.unordered_iteration,
            NO_ALLOC_IN_HOT_LOOP => &mut self.no_alloc_in_hot_loop,
            UNSAFE_NEEDS_SAFETY_COMMENT => &mut self.unsafe_needs_safety_comment,
            LOCK_ORDER => &mut self.lock_order,
            CONDVAR_WAIT_LOOP => &mut self.condvar_wait_loop,
            UNSAFE_PROVENANCE => &mut self.unsafe_provenance,
            TRANSITIVE_DETERMINISM => &mut self.transitive_determinism,
            other => return Err(other.to_string()),
        };
        scope.include = prefixes;
        Ok(())
    }
}

/// `true` for the directive-grammar meta-rules — never suppressible and
/// never absorbed by a baseline.
pub fn is_meta_rule(rule: &str) -> bool {
    matches!(rule, BARE_ALLOW | UNKNOWN_RULE | UNKNOWN_DIRECTIVE)
}

/// `true` when a path component marks the whole file as test code.
pub fn path_is_test_code(path: &str) -> bool {
    path.split('/')
        .any(|c| matches!(c, "tests" | "benches" | "examples"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scopes_cover_the_contract_crates() {
        let c = Config::workspace_default();
        assert!(c.no_panic_in_io.covers("crates/store/src/run.rs"));
        assert!(c
            .no_panic_in_io
            .covers("crates/explore/src/bin/spiking-armor.rs"));
        assert!(!c.no_panic_in_io.covers("crates/tensor/src/gemm.rs"));
        // The distributed-grid modules sit under the same prefixes: lease
        // I/O must degrade typed, and the worker/reducer paths feed the
        // journal and `grid.json`, so the determinism passes own them too.
        assert!(c.no_panic_in_io.covers("crates/store/src/lease.rs"));
        assert!(c.no_panic_in_io.covers("crates/explore/src/worker.rs"));
        assert!(c.wallclock_purity.covers("crates/store/src/lease.rs"));
        assert!(c.unordered_iteration.covers("crates/explore/src/reduce.rs"));
        assert!(c.lock_order.covers("crates/explore/src/worker.rs"));
        assert!(c.transitive_determinism.covers("crates/store/src/lease.rs"));
        assert!(c
            .transitive_determinism
            .covers("crates/explore/src/reduce.rs"));
        // The metrics layer is artifact code for the determinism rules
        // only; recording bugs may panic, artifacts may not wobble.
        assert!(c.wallclock_purity.covers("crates/obs/src/span.rs"));
        assert!(c.unordered_iteration.covers("crates/obs/src/registry.rs"));
        assert!(!c.no_panic_in_io.covers("crates/obs/src/recorder.rs"));
        // The serving layer: typed errors on every network-facing path and
        // byte-stable artifacts, but latency measurement is allowed (it is
        // not in the wallclock-purity scope).
        assert!(c.no_panic_in_io.covers("crates/serve/src/server.rs"));
        assert!(c.unordered_iteration.covers("crates/serve/src/protocol.rs"));
        assert!(!c.wallclock_purity.covers("crates/serve/src/server.rs"));
        assert!(c.no_alloc_in_hot_loop.covers("crates/tensor/src/conv.rs"));
        // The explicit-SIMD and event-driven kernels live under the same
        // tensor scope: their hot loops and `unsafe` blocks are covered.
        assert!(c.no_alloc_in_hot_loop.covers("crates/tensor/src/simd.rs"));
        assert!(c.no_alloc_in_hot_loop.covers("crates/tensor/src/event.rs"));
        assert!(c
            .unsafe_needs_safety_comment
            .covers("crates/tensor/src/simd.rs"));
        assert!(c
            .unsafe_needs_safety_comment
            .covers("crates/lint/src/lexer.rs"));
        // The interprocedural passes: concurrency everywhere, provenance
        // only in the unsafe-capable crate, determinism everywhere except
        // the latency-reporting bench binary.
        assert!(c.lock_order.covers("crates/store/src/journal.rs"));
        assert!(c.condvar_wait_loop.covers("crates/serve/src/batcher.rs"));
        assert!(c.unsafe_provenance.covers("crates/tensor/src/simd.rs"));
        assert!(!c.unsafe_provenance.covers("crates/serve/src/server.rs"));
        assert!(c
            .transitive_determinism
            .covers("crates/serve/src/server.rs"));
        assert!(!c
            .transitive_determinism
            .covers("crates/serve/src/bin/serve-bench.rs"));
    }

    #[test]
    fn test_paths_are_recognised() {
        assert!(path_is_test_code("crates/store/tests/format_robustness.rs"));
        assert!(path_is_test_code("crates/bench/benches/micro.rs"));
        assert!(!path_is_test_code("crates/store/src/run.rs"));
    }

    #[test]
    fn scope_override_rejects_unknown_rules() {
        let mut c = Config::workspace_default();
        assert!(c.set_include("no-panic-in-io", vec!["x/".into()]).is_ok());
        assert!(c.no_panic_in_io.covers("x/y.rs"));
        assert!(c.set_include("not-a-rule", vec![]).is_err());
    }
}
