//! The committed-baseline diff mode: CI fails only on *new* findings.
//!
//! A baseline file (`lint-baseline.json`, written by `--write-baseline`)
//! records the accepted findings as `(path, rule, message)` triples —
//! deliberately without line numbers, so unrelated edits that shift a
//! known finding do not break the gate. Matching is multiset: two
//! identical findings in the baseline absorb at most two current ones.
//! The parser is a minimal recursive-descent JSON reader restricted to
//! the baseline schema, keeping the crate dependency-free.

use std::collections::BTreeMap;

use crate::diag::{escape_json, Diagnostic};

/// The schema tag written into and required from every baseline file.
pub const SCHEMA: &str = "armor-lint-baseline/v1";

/// A parsed baseline: accepted `(path, rule, message)` triples.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: Vec<(String, String, String)>,
}

/// The result of diffing a current run against a baseline.
#[derive(Debug)]
pub struct Delta {
    /// Findings not absorbed by the baseline — these fail the gate.
    pub new: Vec<Diagnostic>,
    /// Current findings matched by a baseline entry.
    pub known: usize,
    /// Baseline entries with no current finding (candidates for
    /// `--write-baseline` cleanup).
    pub resolved: usize,
}

/// Renders `diags` as a baseline file.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"schema\": \"");
    out.push_str(SCHEMA);
    out.push_str("\",\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"path\": \"");
        escape_json(&d.path, &mut out);
        out.push_str("\", \"rule\": \"");
        escape_json(d.rule, &mut out);
        out.push_str("\", \"message\": \"");
        escape_json(&d.message, &mut out);
        out.push_str("\"}");
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Diffs the current findings against `base`. Directive-grammar
/// diagnostics never baseline away: a broken suppression must always
/// fail, or the baseline could mask a rotted allow forever.
pub fn diff(current: &[Diagnostic], base: &Baseline) -> Delta {
    let mut pool: BTreeMap<(&str, &str, &str), usize> = BTreeMap::new();
    for (p, r, m) in &base.entries {
        *pool
            .entry((p.as_str(), r.as_str(), m.as_str()))
            .or_default() += 1;
    }
    let mut delta = Delta {
        new: Vec::new(),
        known: 0,
        resolved: 0,
    };
    for d in current {
        let key = (d.path.as_str(), d.rule, d.message.as_str());
        match pool.get_mut(&key) {
            Some(n) if *n > 0 && !crate::config::is_meta_rule(d.rule) => {
                *n -= 1;
                delta.known += 1;
            }
            _ => delta.new.push(d.clone()),
        }
    }
    delta.resolved = pool.values().sum();
    delta
}

/// Parses a baseline file.
///
/// # Errors
///
/// Returns a human-readable message when the text is not valid baseline
/// JSON or carries the wrong schema tag.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    let mut schema = None;
    let mut entries = Vec::new();
    p.ws();
    p.expect(b'{')?;
    loop {
        p.ws();
        if p.eat(b'}') {
            break;
        }
        let key = p.string()?;
        p.ws();
        p.expect(b':')?;
        p.ws();
        match key.as_str() {
            "schema" => schema = Some(p.string()?),
            "findings" => {
                p.expect(b'[')?;
                loop {
                    p.ws();
                    if p.eat(b']') {
                        break;
                    }
                    entries.push(p.finding()?);
                    p.ws();
                    if !p.eat(b',') {
                        p.expect(b']')?;
                        break;
                    }
                }
            }
            _ => p.skip_value()?,
        }
        p.ws();
        if !p.eat(b',') {
            p.expect(b'}')?;
            break;
        }
    }
    match schema.as_deref() {
        Some(SCHEMA) => Ok(Baseline { entries }),
        Some(other) => Err(format!("unsupported baseline schema `{other}`")),
        None => Err("baseline file has no `schema` field".into()),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.at += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.at) == Some(&b) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!(
                "baseline parse error at byte {}: expected `{}`",
                self.at, b as char
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at) {
                None => return Err("baseline parse error: unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.bytes.get(self.at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or("baseline parse error: truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or("baseline parse error: bad \\u escape")?;
                            out.push(hex);
                            self.at += 4;
                        }
                        _ => return Err("baseline parse error: bad escape".into()),
                    }
                    self.at += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 continues until the next ASCII
                    // boundary; copy bytes verbatim (input is valid UTF-8).
                    let start = self.at;
                    self.at += 1;
                    while b >= 0x80
                        && self
                            .bytes
                            .get(self.at)
                            .is_some_and(|&n| (0x80..0xc0).contains(&n))
                    {
                        self.at += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.at])
                            .map_err(|_| "baseline parse error: invalid UTF-8")?,
                    );
                }
            }
        }
    }

    fn finding(&mut self) -> Result<(String, String, String), String> {
        self.expect(b'{')?;
        let (mut path, mut rule, mut message) = (None, None, None);
        loop {
            self.ws();
            if self.eat(b'}') {
                break;
            }
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.string()?;
            match key.as_str() {
                "path" => path = Some(val),
                "rule" => rule = Some(val),
                "message" => message = Some(val),
                other => return Err(format!("baseline parse error: unknown key `{other}`")),
            }
            self.ws();
            if !self.eat(b',') {
                self.expect(b'}')?;
                break;
            }
        }
        match (path, rule, message) {
            (Some(p), Some(r), Some(m)) => Ok((p, r, m)),
            _ => Err("baseline parse error: finding needs path, rule, message".into()),
        }
    }

    /// Skips one unknown scalar value (string, number, bool, null) — the
    /// baseline schema has no unknown composites.
    fn skip_value(&mut self) -> Result<(), String> {
        match self.bytes.get(self.at) {
            Some(b'"') => self.string().map(|_| ()),
            Some(_) => {
                while self
                    .bytes
                    .get(self.at)
                    .is_some_and(|&b| !matches!(b, b',' | b'}' | b']') && !b.is_ascii_whitespace())
                {
                    self.at += 1;
                }
                Ok(())
            }
            None => Err("baseline parse error: truncated value".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(path: &str, rule: &'static str, msg: &str) -> Diagnostic {
        Diagnostic {
            path: path.into(),
            line: 1,
            col: 1,
            rule,
            message: msg.into(),
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let diags = [
            d("a.rs", "lock-order", "cycle `a` → `b` → `a`"),
            d("b.rs", "condvar-wait-loop", "say \"hi\"\\"),
        ];
        let text = render(&diags);
        let base = parse(&text).unwrap();
        let delta = diff(&diags, &base);
        assert!(delta.new.is_empty(), "{delta:?}");
        assert_eq!(delta.known, 2);
        assert_eq!(delta.resolved, 0);
    }

    #[test]
    fn diff_is_multiset_and_reports_new_and_resolved() {
        let old = [d("a.rs", "lock-order", "m"), d("a.rs", "lock-order", "m")];
        let base = parse(&render(&old)).unwrap();
        // One of the two duplicates fixed, one new finding elsewhere.
        let now = [d("a.rs", "lock-order", "m"), d("c.rs", "lock-order", "x")];
        let delta = diff(&now, &base);
        assert_eq!(delta.known, 1);
        assert_eq!(delta.resolved, 1);
        assert_eq!(delta.new.len(), 1);
        assert_eq!(delta.new[0].path, "c.rs");
    }

    #[test]
    fn meta_rules_never_baseline_away() {
        let broken = [d("a.rs", "bare-allow", "suppression without justification")];
        let base = parse(&render(&broken)).unwrap();
        let delta = diff(&broken, &base);
        assert_eq!(delta.new.len(), 1, "a rotted allow must keep failing");
    }

    #[test]
    fn wrong_schema_and_garbage_are_errors() {
        assert!(parse("{\"schema\": \"v0\", \"findings\": []}").is_err());
        assert!(parse("{\"findings\": []}").is_err());
        assert!(parse("not json").is_err());
        assert!(parse(&render(&[])).is_ok());
    }
}
