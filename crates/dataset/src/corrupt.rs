//! Common (non-adversarial) image corruptions.
//!
//! Adversarial robustness and corruption robustness are different axes; the
//! corruptions here provide the non-adversarial control condition for the
//! exploration experiments (is a robust `(V_th, T)` combination robust to
//! *any* perturbation, or specifically to gradient-crafted ones?).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::Tensor;

use crate::Dataset;

/// A deterministic, severity-parameterised image corruption.
///
/// All corruptions keep pixels in `[0, 1]` and are reproducible from their
/// seed. Severity is a free scale in `[0, 1]` where `0` is the identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Corruption {
    /// Additive Gaussian noise with standard deviation `severity · 0.5`.
    GaussianNoise {
        /// Sampling seed.
        seed: u64,
    },
    /// Contrast reduction toward mid-gray: `x ← 0.5 + (x − 0.5)·(1 − severity)`.
    ContrastLoss,
    /// Salt-and-pepper: a `severity/2` fraction of pixels forced to 0, the
    /// same fraction forced to 1.
    SaltPepper {
        /// Sampling seed.
        seed: u64,
    },
    /// A square occlusion patch covering `severity` of the image's side
    /// length, placed deterministically per sample.
    Occlusion {
        /// Placement seed.
        seed: u64,
    },
}

impl Corruption {
    /// A short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Corruption::GaussianNoise { .. } => "gaussian_noise",
            Corruption::ContrastLoss => "contrast_loss",
            Corruption::SaltPepper { .. } => "salt_pepper",
            Corruption::Occlusion { .. } => "occlusion",
        }
    }

    /// Applies the corruption at `severity ∈ [0, 1]` to a `[N, 1, H, W]`
    /// image tensor.
    ///
    /// # Panics
    ///
    /// Panics if `severity` is outside `[0, 1]` or `images` is not rank 4.
    pub fn apply(&self, images: &Tensor, severity: f32) -> Tensor {
        assert!(
            (0.0..=1.0).contains(&severity),
            "severity must be in [0, 1], got {severity}"
        );
        let dims = images.dims();
        assert_eq!(dims.len(), 4, "images must be [N, C, H, W], got {dims:?}");
        if severity == 0.0 {
            return images.clone();
        }
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let mut out = images.clone();
        match *self {
            Corruption::GaussianNoise { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let std = severity * 0.5;
                for v in out.data_mut() {
                    *v = (*v + tensor::init::standard_normal(&mut rng) * std).clamp(0.0, 1.0);
                }
            }
            Corruption::ContrastLoss => {
                let keep = 1.0 - severity;
                out.map_inplace(|v| 0.5 + (v - 0.5) * keep);
            }
            Corruption::SaltPepper { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let p = severity / 2.0;
                for v in out.data_mut() {
                    let u: f32 = rng.gen();
                    if u < p {
                        *v = 0.0;
                    } else if u < 2.0 * p {
                        *v = 1.0;
                    }
                }
            }
            Corruption::Occlusion { seed } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let patch_h = ((h as f32 * severity).round() as usize).min(h);
                let patch_w = ((w as f32 * severity).round() as usize).min(w);
                if patch_h == 0 || patch_w == 0 {
                    return out;
                }
                let plane = h * w;
                for s in 0..n {
                    let top = rng.gen_range(0..=h - patch_h);
                    let left = rng.gen_range(0..=w - patch_w);
                    let image = &mut out.data_mut()[s * plane..(s + 1) * plane];
                    for i in top..top + patch_h {
                        for j in left..left + patch_w {
                            image[i * w + j] = 0.0;
                        }
                    }
                }
            }
        }
        out
    }

    /// Applies the corruption to a dataset, preserving labels.
    pub fn apply_dataset(&self, data: &Dataset, severity: f32) -> Dataset {
        Dataset::new(
            self.apply(data.images(), severity),
            data.labels().to_vec(),
            data.classes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gray(n: usize, hw: usize) -> Tensor {
        Tensor::full(&[n, 1, hw, hw], 0.5)
    }

    #[test]
    fn zero_severity_is_identity_for_all() {
        let x = gray(2, 6);
        for c in [
            Corruption::GaussianNoise { seed: 1 },
            Corruption::ContrastLoss,
            Corruption::SaltPepper { seed: 1 },
            Corruption::Occlusion { seed: 1 },
        ] {
            assert_eq!(c.apply(&x, 0.0), x, "{}", c.name());
        }
    }

    #[test]
    fn outputs_stay_in_unit_range() {
        let x = gray(2, 8);
        for c in [
            Corruption::GaussianNoise { seed: 2 },
            Corruption::ContrastLoss,
            Corruption::SaltPepper { seed: 2 },
            Corruption::Occlusion { seed: 2 },
        ] {
            let y = c.apply(&x, 1.0);
            assert!(y.min() >= 0.0 && y.max() <= 1.0, "{}", c.name());
        }
    }

    #[test]
    fn contrast_loss_compresses_toward_gray() {
        let x = Tensor::from_vec(vec![0.0, 1.0, 0.25, 0.75], &[1, 1, 2, 2]);
        let y = Corruption::ContrastLoss.apply(&x, 0.5);
        assert_eq!(y.data(), &[0.25, 0.75, 0.375, 0.625]);
        // Full severity collapses everything to gray.
        let y = Corruption::ContrastLoss.apply(&x, 1.0);
        assert!(y.data().iter().all(|&v| (v - 0.5).abs() < 1e-6));
    }

    #[test]
    fn salt_pepper_fraction_tracks_severity() {
        let x = gray(1, 32);
        let y = Corruption::SaltPepper { seed: 3 }.apply(&x, 0.4);
        let extreme = y.data().iter().filter(|&&v| v == 0.0 || v == 1.0).count();
        let frac = extreme as f32 / y.len() as f32;
        assert!((frac - 0.4).abs() < 0.07, "extreme fraction {frac}");
    }

    #[test]
    fn occlusion_zeroes_a_contiguous_patch() {
        let x = Tensor::ones(&[1, 1, 8, 8]);
        let y = Corruption::Occlusion { seed: 4 }.apply(&x, 0.5);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        assert_eq!(zeros, 16, "a 4x4 patch should be occluded");
    }

    #[test]
    fn corruption_is_seed_deterministic() {
        let x = gray(2, 8);
        let c = Corruption::GaussianNoise { seed: 9 };
        assert_eq!(c.apply(&x, 0.3), c.apply(&x, 0.3));
    }

    #[test]
    fn dataset_corruption_preserves_labels() {
        let data = crate::synth::SynthDigits::new(8)
            .samples_per_class(2)
            .generate();
        let corrupted = Corruption::ContrastLoss.apply_dataset(&data, 0.3);
        assert_eq!(corrupted.labels(), data.labels());
        assert_eq!(corrupted.len(), data.len());
        assert_ne!(corrupted.images(), data.images());
    }
}
