//! Digit-image datasets for the `spiking-armor` workspace.
//!
//! The reproduced paper evaluates on MNIST. MNIST files are not available in
//! this offline environment, so this crate provides two interchangeable
//! sources behind one [`Dataset`] type:
//!
//! * [`synth`] — **SynthDigits**, a procedural generator that renders the
//!   ten digits from seven-segment stroke templates with random affine
//!   jitter, stroke thickness variation and pixel noise. Like MNIST it is a
//!   10-class task of sparse bright strokes on a dark background in
//!   `[0, 1]`, which is the input-statistics family that rate encoding and
//!   L∞ attacks interact with (see `DESIGN.md` §2 for the substitution
//!   argument).
//! * [`mnist`] — a loader for the original MNIST IDX files; drop the four
//!   `*-ubyte` files into a directory and the paper-scale experiments run
//!   on the real data unchanged.
//!
//! # Example
//!
//! ```
//! use dataset::synth::SynthDigits;
//!
//! let data = SynthDigits::new(12).samples_per_class(3).seed(7).generate();
//! assert_eq!(data.len(), 30);
//! assert_eq!(data.classes(), 10);
//! assert_eq!(data.images().dims(), &[30, 1, 12, 12]);
//! ```

#![forbid(unsafe_code)]

mod data;

pub mod augment;
pub mod corrupt;
pub mod mnist;
pub mod motion;
pub mod synth;

pub use data::Dataset;
