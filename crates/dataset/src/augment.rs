//! On-the-fly training augmentation.
//!
//! Augmentations are deterministic in `(seed, epoch)` so training remains
//! reproducible, and operate on whole datasets so the training loop stays
//! oblivious to them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::Tensor;

use crate::Dataset;

/// Augmentation policy applied once per epoch to the training set.
///
/// # Example
///
/// ```
/// use dataset::augment::Augment;
/// use dataset::synth::SynthDigits;
///
/// let data = SynthDigits::new(10).samples_per_class(2).generate();
/// let policy = Augment::new(7).max_shift(1).noise(0.02);
/// let epoch0 = policy.apply(&data, 0);
/// let epoch1 = policy.apply(&data, 1);
/// assert_eq!(epoch0.len(), data.len());
/// assert_ne!(epoch0.images(), epoch1.images(), "epochs vary");
/// assert_eq!(epoch0.images(), policy.apply(&data, 0).images(), "per-epoch deterministic");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Augment {
    seed: u64,
    max_shift: usize,
    noise: f32,
    flip: bool,
}

impl Augment {
    /// Starts a policy with no transforms enabled.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            max_shift: 0,
            noise: 0.0,
            flip: false,
        }
    }

    /// Enables random rigid shifts of up to `pixels` in each direction.
    pub fn max_shift(mut self, pixels: usize) -> Self {
        self.max_shift = pixels;
        self
    }

    /// Enables additive Gaussian pixel noise with the given std.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative.
    pub fn noise(mut self, std: f32) -> Self {
        assert!(std >= 0.0, "noise std must be non-negative, got {std}");
        self.noise = std;
        self
    }

    /// Enables random horizontal flips (off by default: digits are
    /// chirality-sensitive — enable only for symmetric tasks).
    pub fn flip(mut self, enabled: bool) -> Self {
        self.flip = enabled;
        self
    }

    /// Applies the policy to every sample, deterministically in
    /// `(self.seed, epoch)`.
    pub fn apply(&self, data: &Dataset, epoch: usize) -> Dataset {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (epoch as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        let dims = data.images().dims().to_vec();
        let (h, w) = (dims[2], dims[3]);
        let plane = h * w;
        let mut out = data.images().clone();
        for s in 0..data.len() {
            let sample = Tensor::from_vec(
                data.images().data()[s * plane..(s + 1) * plane].to_vec(),
                &[1, 1, h, w],
            );
            let mut sample = if self.max_shift > 0 {
                let m = self.max_shift as isize;
                sample.shift2d(rng.gen_range(-m..=m), rng.gen_range(-m..=m))
            } else {
                sample
            };
            if self.flip && rng.gen_bool(0.5) {
                sample = sample.flip_horizontal();
            }
            if self.noise > 0.0 {
                for v in sample.data_mut() {
                    *v =
                        (*v + tensor::init::standard_normal(&mut rng) * self.noise).clamp(0.0, 1.0);
                }
            }
            out.data_mut()[s * plane..(s + 1) * plane].copy_from_slice(sample.data());
        }
        Dataset::new(out, data.labels().to_vec(), data.classes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthDigits;

    fn base() -> Dataset {
        SynthDigits::new(10).samples_per_class(3).seed(1).generate()
    }

    #[test]
    fn disabled_policy_is_identity() {
        let data = base();
        let out = Augment::new(0).apply(&data, 3);
        assert_eq!(out.images(), data.images());
        assert_eq!(out.labels(), data.labels());
    }

    #[test]
    fn shift_preserves_labels_and_range() {
        let data = base();
        let out = Augment::new(2).max_shift(2).apply(&data, 0);
        assert_eq!(out.labels(), data.labels());
        assert!(out.images().min() >= 0.0 && out.images().max() <= 1.0);
        assert_ne!(out.images(), data.images());
    }

    #[test]
    fn noise_respects_pixel_box() {
        let data = base();
        let out = Augment::new(3).noise(0.3).apply(&data, 0);
        assert!(out.images().min() >= 0.0 && out.images().max() <= 1.0);
    }

    #[test]
    fn flip_only_flips_some_samples() {
        let data = base();
        let out = Augment::new(4).flip(true).apply(&data, 0);
        let plane = 100;
        let changed = (0..data.len())
            .filter(|&s| {
                out.images().data()[s * plane..(s + 1) * plane]
                    != data.images().data()[s * plane..(s + 1) * plane]
            })
            .count();
        assert!(changed > 0 && changed < data.len(), "changed {changed}");
    }
}
