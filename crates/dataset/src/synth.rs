//! SynthDigits: a procedural, deterministic stand-in for MNIST.
//!
//! Each digit class is rendered from its seven-segment stroke template with
//! a randomly sampled affine transform (rotation, scale, translation),
//! stroke thickness and additive pixel noise, then clamped to `[0, 1]`.
//! The result is a 10-class task of sparse bright strokes on a dark
//! background — the same input family as MNIST from the point of view of
//! rate encoding and L∞-bounded attacks.

use rand::Rng;
use rand::SeedableRng;
use tensor::Tensor;

use crate::Dataset;

/// The seven segments of a digit display, as line segments in a normalized
/// `[0, 1]²` glyph box (x right, y down).
///
/// Segment order: A (top), B (top-right), C (bottom-right), D (bottom),
/// E (bottom-left), F (top-left), G (middle).
const SEGMENTS: [((f32, f32), (f32, f32)); 7] = [
    ((0.2, 0.1), (0.8, 0.1)), // A
    ((0.8, 0.1), (0.8, 0.5)), // B
    ((0.8, 0.5), (0.8, 0.9)), // C
    ((0.2, 0.9), (0.8, 0.9)), // D
    ((0.2, 0.5), (0.2, 0.9)), // E
    ((0.2, 0.1), (0.2, 0.5)), // F
    ((0.2, 0.5), (0.8, 0.5)), // G
];

/// Active segments per digit (standard seven-segment encoding).
const DIGIT_SEGMENTS: [[bool; 7]; 10] = [
    [true, true, true, true, true, true, false],     // 0
    [false, true, true, false, false, false, false], // 1
    [true, true, false, true, true, false, true],    // 2
    [true, true, true, true, false, false, true],    // 3
    [false, true, true, false, false, true, true],   // 4
    [true, false, true, true, false, true, true],    // 5
    [true, false, true, true, true, true, true],     // 6
    [true, true, true, false, false, false, false],  // 7
    [true, true, true, true, true, true, true],      // 8
    [true, true, true, true, false, true, true],     // 9
];

/// Builder for a SynthDigits dataset.
///
/// # Example
///
/// ```
/// use dataset::synth::SynthDigits;
///
/// let data = SynthDigits::new(16)
///     .samples_per_class(8)
///     .seed(1)
///     .noise(0.05)
///     .generate();
/// assert_eq!(data.len(), 80);
/// assert_eq!(data.hw(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct SynthDigits {
    hw: usize,
    samples_per_class: usize,
    seed: u64,
    noise: f32,
    jitter: f32,
    thickness: f32,
}

impl SynthDigits {
    /// Starts a builder for `hw × hw` images with sensible defaults
    /// (64 samples/class, 5% noise, moderate jitter).
    ///
    /// # Panics
    ///
    /// Panics if `hw < 6` — the glyph cannot be resolved below that.
    pub fn new(hw: usize) -> Self {
        assert!(hw >= 6, "SynthDigits needs at least 6x6 pixels, got {hw}");
        Self {
            hw,
            samples_per_class: 64,
            seed: 0,
            noise: 0.05,
            jitter: 0.08,
            thickness: 0.09,
        }
    }

    /// Number of samples rendered per digit class.
    pub fn samples_per_class(mut self, n: usize) -> Self {
        assert!(n > 0, "samples_per_class must be positive");
        self.samples_per_class = n;
        self
    }

    /// RNG seed; the same builder settings and seed always produce the same
    /// dataset.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Standard deviation of additive Gaussian pixel noise (clamped output).
    pub fn noise(mut self, noise: f32) -> Self {
        assert!((0.0..=0.5).contains(&noise), "noise must be in [0, 0.5]");
        self.noise = noise;
        self
    }

    /// Magnitude of the random affine jitter (translation fraction; rotation
    /// and scale are scaled proportionally).
    pub fn jitter(mut self, jitter: f32) -> Self {
        assert!((0.0..=0.3).contains(&jitter), "jitter must be in [0, 0.3]");
        self.jitter = jitter;
        self
    }

    /// Renders the dataset: `10 × samples_per_class` images, shuffled.
    pub fn generate(&self) -> Dataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let n = 10 * self.samples_per_class;
        let hw = self.hw;
        let mut data = vec![0.0f32; n * hw * hw];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let digit = i % 10;
            labels.push(digit);
            let image = &mut data[i * hw * hw..(i + 1) * hw * hw];
            self.render(digit, image, &mut rng);
        }
        let images = Tensor::from_vec(data, &[n, 1, hw, hw]);
        let mut shuffle_rng = rand::rngs::StdRng::seed_from_u64(self.seed.wrapping_add(1));
        Dataset::new(images, labels, 10).shuffled(&mut shuffle_rng)
    }

    /// Renders one digit instance into `image` (row-major `hw × hw`).
    fn render<R: Rng>(&self, digit: usize, image: &mut [f32], rng: &mut R) {
        let hw = self.hw as f32;
        // Sample the affine transform mapping glyph space -> image space;
        // we evaluate its inverse per pixel.
        let angle = rng.gen_range(-1.0..1.0) * self.jitter * 2.0; // radians
        let scale = 1.0 + rng.gen_range(-1.0..1.0) * self.jitter;
        let tx = rng.gen_range(-1.0..1.0) * self.jitter;
        let ty = rng.gen_range(-1.0..1.0) * self.jitter;
        let thickness = self.thickness * (1.0 + rng.gen_range(-0.3..0.3));
        let brightness = rng.gen_range(0.8..1.0);
        let (sin, cos) = angle.sin_cos();
        let segments = &DIGIT_SEGMENTS[digit];
        for py in 0..self.hw {
            for px in 0..self.hw {
                // Pixel centre in normalized image space.
                let x = (px as f32 + 0.5) / hw;
                let y = (py as f32 + 0.5) / hw;
                // Inverse affine: undo translation, rotation, scale about the centre.
                let (cx, cy) = (x - 0.5 - tx, y - 0.5 - ty);
                let gx = (cx * cos + cy * sin) / scale + 0.5;
                let gy = (-cx * sin + cy * cos) / scale + 0.5;
                let mut dist = f32::INFINITY;
                for (seg, &active) in SEGMENTS.iter().zip(segments) {
                    if active {
                        dist = dist.min(point_segment_distance(gx, gy, seg.0, seg.1));
                    }
                }
                // Soft stroke edge: full brightness inside, linear falloff
                // over half a stroke width.
                let edge = thickness * 0.5;
                let v = if dist <= thickness {
                    brightness
                } else if dist <= thickness + edge {
                    brightness * (1.0 - (dist - thickness) / edge)
                } else {
                    0.0
                };
                let noise = tensor::init::standard_normal(rng) * self.noise;
                image[py * self.hw + px] = (v + noise).clamp(0.0, 1.0);
            }
        }
    }
}

/// Euclidean distance from point `(px, py)` to segment `a`–`b`.
fn point_segment_distance(px: f32, py: f32, a: (f32, f32), b: (f32, f32)) -> f32 {
    let (ax, ay) = a;
    let (bx, by) = b;
    let (dx, dy) = (bx - ax, by - ay);
    let len2 = dx * dx + dy * dy;
    let t = if len2 == 0.0 {
        0.0
    } else {
        (((px - ax) * dx + (py - ay) * dy) / len2).clamp(0.0, 1.0)
    };
    let (cx, cy) = (ax + t * dx, ay + t * dy);
    ((px - cx) * (px - cx) + (py - cy) * (py - cy)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SynthDigits::new(12).samples_per_class(2).seed(5).generate();
        let b = SynthDigits::new(12).samples_per_class(2).seed(5).generate();
        assert_eq!(a.images(), b.images());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let a = SynthDigits::new(12).samples_per_class(2).seed(5).generate();
        let b = SynthDigits::new(12).samples_per_class(2).seed(6).generate();
        assert_ne!(a.images(), b.images());
    }

    #[test]
    fn classes_are_balanced() {
        let d = SynthDigits::new(10).samples_per_class(7).seed(0).generate();
        assert_eq!(d.class_counts(), vec![7; 10]);
    }

    #[test]
    fn pixels_are_in_unit_range_and_strokes_are_bright() {
        let d = SynthDigits::new(16).samples_per_class(4).seed(1).generate();
        let img = d.images();
        assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Strokes exist: a reasonable fraction of pixels is bright.
        let bright = img.data().iter().filter(|&&v| v > 0.5).count();
        let frac = bright as f32 / img.len() as f32;
        assert!(frac > 0.05 && frac < 0.7, "bright fraction {frac}");
    }

    #[test]
    fn digit_classes_are_visually_distinct() {
        // Mean image per class should differ between e.g. 1 (two segments)
        // and 8 (all seven segments): 8 has much more ink.
        let d = SynthDigits::new(16)
            .samples_per_class(16)
            .seed(2)
            .noise(0.0)
            .generate();
        let hw = d.hw();
        let ink = |class: usize| -> f32 {
            let mut total = 0.0;
            let mut count = 0;
            for (i, &l) in d.labels().iter().enumerate() {
                if l == class {
                    let s: f32 = d.images().data()[i * hw * hw..(i + 1) * hw * hw]
                        .iter()
                        .sum();
                    total += s;
                    count += 1;
                }
            }
            total / count as f32
        };
        assert!(
            ink(8) > 2.0 * ink(1),
            "8 ink {} vs 1 ink {}",
            ink(8),
            ink(1)
        );
    }

    #[test]
    fn one_and_zero_templates_do_not_overlap_fully() {
        // Per seven-segment encoding, 0 uses six segments, 1 uses two.
        assert_eq!(DIGIT_SEGMENTS[0].iter().filter(|&&s| s).count(), 6);
        assert_eq!(DIGIT_SEGMENTS[1].iter().filter(|&&s| s).count(), 2);
        assert_eq!(DIGIT_SEGMENTS[8].iter().filter(|&&s| s).count(), 7);
    }

    #[test]
    fn point_segment_distance_basics() {
        let d = point_segment_distance(0.5, 0.5, (0.0, 0.0), (1.0, 0.0));
        assert!((d - 0.5).abs() < 1e-6);
        // Beyond the endpoint the distance is to the endpoint.
        let d = point_segment_distance(2.0, 0.0, (0.0, 0.0), (1.0, 0.0));
        assert!((d - 1.0).abs() < 1e-6);
        // Degenerate zero-length segment.
        let d = point_segment_distance(1.0, 1.0, (0.0, 0.0), (0.0, 0.0));
        assert!((d - 2.0f32.sqrt()).abs() < 1e-6);
    }
}

#[cfg(test)]
mod render_tests {
    use super::*;

    /// The generated digits are recognisable enough that a simple
    /// template-matching classifier (nearest mean image, noise-free
    /// templates) beats chance by a wide margin — evidence the task is
    /// learnable for the reasons digits are, not by accident.
    #[test]
    fn nearest_template_classifier_beats_chance() {
        let clean = SynthDigits::new(12)
            .samples_per_class(8)
            .noise(0.0)
            .jitter(0.0)
            .seed(7)
            .generate();
        let noisy = SynthDigits::new(12).samples_per_class(8).seed(8).generate();
        let hw = 12 * 12;
        // Build per-class templates from the clean set.
        let mut templates = vec![vec![0.0f32; hw]; 10];
        let mut counts = vec![0usize; 10];
        for (i, &l) in clean.labels().iter().enumerate() {
            for (t, &v) in templates[l]
                .iter_mut()
                .zip(&clean.images().data()[i * hw..(i + 1) * hw])
            {
                *t += v;
            }
            counts[l] += 1;
        }
        for (t, &c) in templates.iter_mut().zip(&counts) {
            for v in t.iter_mut() {
                *v /= c as f32;
            }
        }
        // Classify the noisy set by nearest template.
        let mut correct = 0usize;
        for (i, &label) in noisy.labels().iter().enumerate() {
            let img = &noisy.images().data()[i * hw..(i + 1) * hw];
            let best = (0..10)
                .min_by(|&a, &b| {
                    let da: f32 = templates[a]
                        .iter()
                        .zip(img)
                        .map(|(t, v)| (t - v) * (t - v))
                        .sum();
                    let db: f32 = templates[b]
                        .iter()
                        .zip(img)
                        .map(|(t, v)| (t - v) * (t - v))
                        .sum();
                    da.total_cmp(&db)
                })
                .unwrap();
            if best == label {
                correct += 1;
            }
        }
        let acc = correct as f32 / noisy.len() as f32;
        assert!(
            acc > 0.5,
            "template matching should beat 10% chance easily, got {acc}"
        );
    }
}
