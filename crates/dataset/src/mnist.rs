//! Loader for the original MNIST IDX files.
//!
//! Place the four canonical files (uncompressed) in one directory:
//!
//! ```text
//! train-images-idx3-ubyte   train-labels-idx1-ubyte
//! t10k-images-idx3-ubyte    t10k-labels-idx1-ubyte
//! ```
//!
//! and call [`load_dir`]. The IDX format is the one documented on the MNIST
//! page: big-endian `u32` magic (`0x803` for images, `0x801` for labels),
//! dimension sizes, then raw `u8` payload.

use std::fs;
use std::io;
use std::path::Path;

use tensor::Tensor;

use crate::Dataset;

/// Parses an IDX3 image file into a `[N, 1, H, W]` tensor scaled to `[0, 1]`.
///
/// # Errors
///
/// Returns an [`io::Error`] if the file cannot be read, the magic number is
/// wrong, or the payload is truncated.
pub fn load_idx_images(path: &Path) -> io::Result<Tensor> {
    let bytes = fs::read(path)?;
    let (magic, rest) = split_u32(&bytes)?;
    if magic != 0x0000_0803 {
        return Err(bad_data(format!(
            "bad image magic {magic:#x} in {}",
            path.display()
        )));
    }
    let (n, rest) = split_u32(rest)?;
    let (h, rest) = split_u32(rest)?;
    let (w, rest) = split_u32(rest)?;
    let (n, h, w) = (n as usize, h as usize, w as usize);
    if rest.len() < n * h * w {
        return Err(bad_data(format!(
            "image payload truncated: need {} bytes, have {}",
            n * h * w,
            rest.len()
        )));
    }
    let data: Vec<f32> = rest[..n * h * w]
        .iter()
        .map(|&b| b as f32 / 255.0)
        .collect();
    Ok(Tensor::from_vec(data, &[n, 1, h, w]))
}

/// Parses an IDX1 label file.
///
/// # Errors
///
/// Returns an [`io::Error`] if the file cannot be read, the magic number is
/// wrong, or the payload is truncated.
pub fn load_idx_labels(path: &Path) -> io::Result<Vec<usize>> {
    let bytes = fs::read(path)?;
    let (magic, rest) = split_u32(&bytes)?;
    if magic != 0x0000_0801 {
        return Err(bad_data(format!(
            "bad label magic {magic:#x} in {}",
            path.display()
        )));
    }
    let (n, rest) = split_u32(rest)?;
    let n = n as usize;
    if rest.len() < n {
        return Err(bad_data(format!(
            "label payload truncated: need {n} bytes, have {}",
            rest.len()
        )));
    }
    Ok(rest[..n].iter().map(|&b| b as usize).collect())
}

/// Loads `(train, test)` MNIST datasets from a directory containing the four
/// canonical files.
///
/// # Errors
///
/// Returns an [`io::Error`] if any file is missing or malformed.
pub fn load_dir(dir: &Path) -> io::Result<(Dataset, Dataset)> {
    let train_images = load_idx_images(&dir.join("train-images-idx3-ubyte"))?;
    let train_labels = load_idx_labels(&dir.join("train-labels-idx1-ubyte"))?;
    let test_images = load_idx_images(&dir.join("t10k-images-idx3-ubyte"))?;
    let test_labels = load_idx_labels(&dir.join("t10k-labels-idx1-ubyte"))?;
    Ok((
        Dataset::new(train_images, train_labels, 10),
        Dataset::new(test_images, test_labels, 10),
    ))
}

fn split_u32(bytes: &[u8]) -> io::Result<(u32, &[u8])> {
    if bytes.len() < 4 {
        return Err(bad_data("file too short for IDX header".to_string()));
    }
    let v = u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    Ok((v, &bytes[4..]))
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_idx3(path: &Path, n: u32, h: u32, w: u32, payload: &[u8]) {
        let mut f = fs::File::create(path).unwrap();
        f.write_all(&0x0000_0803u32.to_be_bytes()).unwrap();
        f.write_all(&n.to_be_bytes()).unwrap();
        f.write_all(&h.to_be_bytes()).unwrap();
        f.write_all(&w.to_be_bytes()).unwrap();
        f.write_all(payload).unwrap();
    }

    fn write_idx1(path: &Path, labels: &[u8]) {
        let mut f = fs::File::create(path).unwrap();
        f.write_all(&0x0000_0801u32.to_be_bytes()).unwrap();
        f.write_all(&(labels.len() as u32).to_be_bytes()).unwrap();
        f.write_all(labels).unwrap();
    }

    #[test]
    fn round_trips_synthetic_idx_files() {
        let dir = std::env::temp_dir().join("spiking_armor_mnist_test");
        fs::create_dir_all(&dir).unwrap();
        let img_path = dir.join("imgs");
        let lbl_path = dir.join("lbls");
        write_idx3(&img_path, 2, 2, 2, &[0, 255, 128, 64, 255, 0, 0, 255]);
        write_idx1(&lbl_path, &[3, 7]);
        let images = load_idx_images(&img_path).unwrap();
        let labels = load_idx_labels(&lbl_path).unwrap();
        assert_eq!(images.dims(), &[2, 1, 2, 2]);
        assert_eq!(images.data()[1], 1.0);
        assert!((images.data()[2] - 128.0 / 255.0).abs() < 1e-6);
        assert_eq!(labels, vec![3, 7]);
    }

    #[test]
    fn rejects_wrong_magic() {
        let dir = std::env::temp_dir().join("spiking_armor_mnist_test2");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad");
        fs::write(&p, 0x1234_5678u32.to_be_bytes()).unwrap();
        assert!(load_idx_images(&p).is_err());
        assert!(load_idx_labels(&p).is_err());
    }

    #[test]
    fn rejects_truncated_payload() {
        let dir = std::env::temp_dir().join("spiking_armor_mnist_test3");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join("trunc");
        write_idx3(&p, 10, 28, 28, &[0u8; 16]);
        assert!(load_idx_images(&p).is_err());
    }

    #[test]
    fn missing_directory_errors() {
        assert!(load_dir(Path::new("/nonexistent/mnist")).is_err());
    }
}
