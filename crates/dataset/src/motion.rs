//! MovingBars: a synthetic *temporal* classification task.
//!
//! Each sample is a short frame sequence (stacked in the channel axis as
//! `[N, frames, H, W]`) of a bright bar sweeping across the image in one of
//! four directions — the class is the direction of motion. No single frame
//! identifies the class: the information is purely temporal, which makes
//! this the dataset where the SNN's time window is *semantically* necessary
//! rather than a rate-coding convenience (the regime of DVS-gesture-style
//! benchmarks in the paper's related work).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::Tensor;

use crate::Dataset;

/// Direction of motion — the class label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Vertical bar moving left → right (label 0).
    Right,
    /// Vertical bar moving right → left (label 1).
    Left,
    /// Horizontal bar moving top → bottom (label 2).
    Down,
    /// Horizontal bar moving bottom → top (label 3).
    Up,
}

impl Direction {
    /// All four directions in label order.
    pub fn all() -> [Direction; 4] {
        [
            Direction::Right,
            Direction::Left,
            Direction::Down,
            Direction::Up,
        ]
    }

    /// The class label of this direction.
    pub fn label(self) -> usize {
        match self {
            Direction::Right => 0,
            Direction::Left => 1,
            Direction::Down => 2,
            Direction::Up => 3,
        }
    }
}

/// Builder for a MovingBars dataset.
///
/// # Example
///
/// ```
/// use dataset::motion::MovingBars;
///
/// let data = MovingBars::new(8, 6).samples_per_class(4).seed(1).generate();
/// assert_eq!(data.len(), 16);
/// assert_eq!(data.channels(), 6); // six frames
/// assert_eq!(data.classes(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct MovingBars {
    hw: usize,
    frames: usize,
    samples_per_class: usize,
    seed: u64,
    noise: f32,
}

impl MovingBars {
    /// Starts a builder for `hw × hw` images with `frames` frames per
    /// sample.
    ///
    /// # Panics
    ///
    /// Panics if `hw < 4` or `frames < 2` (motion needs at least two
    /// frames).
    pub fn new(hw: usize, frames: usize) -> Self {
        assert!(hw >= 4, "MovingBars needs at least 4x4 pixels, got {hw}");
        assert!(frames >= 2, "motion needs at least 2 frames, got {frames}");
        Self {
            hw,
            frames,
            samples_per_class: 16,
            seed: 0,
            noise: 0.02,
        }
    }

    /// Samples per direction class.
    pub fn samples_per_class(mut self, n: usize) -> Self {
        assert!(n > 0, "samples_per_class must be positive");
        self.samples_per_class = n;
        self
    }

    /// RNG seed (phase offsets and noise).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Additive Gaussian pixel-noise std.
    pub fn noise(mut self, noise: f32) -> Self {
        assert!((0.0..=0.5).contains(&noise), "noise must be in [0, 0.5]");
        self.noise = noise;
        self
    }

    /// Renders the dataset (`[N, frames, H, W]`, shuffled).
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = 4 * self.samples_per_class;
        let (hw, frames) = (self.hw, self.frames);
        let sample_len = frames * hw * hw;
        let mut data = vec![0.0f32; n * sample_len];
        let mut labels = Vec::with_capacity(n);
        for (i, chunk) in data.chunks_mut(sample_len).enumerate() {
            let direction = Direction::all()[i % 4];
            labels.push(direction.label());
            // A random starting phase so position in any single frame does
            // not identify the class.
            let phase = rng.gen_range(0..hw);
            for f in 0..frames {
                let frame = &mut chunk[f * hw * hw..(f + 1) * hw * hw];
                // The bar advances one pixel per frame, wrapping around.
                let pos = (phase + f) % hw;
                for i_row in 0..hw {
                    for j_col in 0..hw {
                        let on = match direction {
                            Direction::Right => j_col == pos,
                            Direction::Left => j_col == (hw - 1) - pos,
                            Direction::Down => i_row == pos,
                            Direction::Up => i_row == (hw - 1) - pos,
                        };
                        let mut v = if on { 1.0 } else { 0.0 };
                        v += tensor::init::standard_normal(&mut rng) * self.noise;
                        frame[i_row * hw + j_col] = v.clamp(0.0, 1.0);
                    }
                }
            }
        }
        let images = Tensor::from_vec(data, &[n, frames, hw, hw]);
        let mut shuffle_rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
        Dataset::new(images, labels, 4).shuffled(&mut shuffle_rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_shape_and_balance() {
        let d = MovingBars::new(6, 4)
            .samples_per_class(3)
            .seed(2)
            .generate();
        assert_eq!(d.images().dims(), &[12, 4, 6, 6]);
        assert_eq!(d.class_counts(), vec![3; 4]);
        assert!(d.images().min() >= 0.0 && d.images().max() <= 1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = MovingBars::new(6, 4).seed(3).generate();
        let b = MovingBars::new(6, 4).seed(3).generate();
        assert_eq!(a.images(), b.images());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn bar_actually_moves_between_frames() {
        let d = MovingBars::new(8, 4)
            .samples_per_class(1)
            .noise(0.0)
            .seed(4)
            .generate();
        let hw = 8;
        let plane = hw * hw;
        // Frame 0 and frame 1 of the first sample must differ (the bar
        // advanced one pixel).
        let sample = &d.images().data()[..4 * plane];
        assert_ne!(&sample[..plane], &sample[plane..2 * plane]);
    }

    #[test]
    fn single_frames_cannot_identify_direction() {
        // A right-moving and a left-moving bar occupy identical positions
        // in *some* frames; verify the class information is temporal by
        // checking right/left samples share at least one identical frame
        // for suitable phases. Statistically: the per-frame marginal
        // distribution of bar positions is uniform for all classes.
        let d = MovingBars::new(6, 6)
            .samples_per_class(24)
            .noise(0.0)
            .seed(5)
            .generate();
        let hw = 6;
        let plane = hw * hw;
        // For each class, count how often column 2 is lit in frame 0 —
        // roughly equal across Right and Left shows frame-0 alone does not
        // separate them.
        let mut lit = [0usize; 4];
        let mut totals = [0usize; 4];
        for (s, &label) in d.labels().iter().enumerate() {
            totals[label] += 1;
            let frame0 = &d.images().data()[s * 6 * plane..s * 6 * plane + plane];
            if (0..hw).any(|r| frame0[r * hw + 2] > 0.5) {
                lit[label] += 1;
            }
        }
        if totals[0] > 0 && totals[1] > 0 {
            let r = lit[0] as f32 / totals[0] as f32;
            let l = lit[1] as f32 / totals[1] as f32;
            assert!(
                (r - l).abs() < 0.5,
                "frame-0 marginals should overlap: {r} vs {l}"
            );
        }
    }
}
