//! The labelled image dataset container.

use rand::seq::SliceRandom;
use rand::Rng;
use tensor::Tensor;

/// A labelled set of images, stored as one `[N, C, H, W]` tensor with pixel
/// values in `[0, 1]` (`C = 1` for static grayscale digits; `C > 1` holds
/// stacked frames of temporal sequences).
///
/// # Example
///
/// ```
/// use dataset::Dataset;
/// use tensor::Tensor;
///
/// let images = Tensor::zeros(&[4, 1, 2, 2]);
/// let data = Dataset::new(images, vec![0, 1, 0, 1], 2);
/// let (train, test) = data.split(0.5);
/// assert_eq!(train.len(), 2);
/// assert_eq!(test.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Bundles images and labels.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not rank 4, the label count differs from `N`,
    /// any label is `>= classes`, or any pixel is outside `[0, 1]`.
    pub fn new(images: Tensor, labels: Vec<usize>, classes: usize) -> Self {
        let dims = images.dims();
        assert!(dims.len() == 4, "images must be [N, C, H, W], got {dims:?}");
        assert_eq!(
            labels.len(),
            dims[0],
            "{} labels for {} images",
            labels.len(),
            dims[0]
        );
        assert!(
            labels.iter().all(|&l| l < classes),
            "label out of range for {classes} classes"
        );
        assert!(
            images.data().iter().all(|&v| (0.0..=1.0).contains(&v)),
            "pixel values must lie in [0, 1]"
        );
        Self {
            images,
            labels,
            classes,
        }
    }

    /// The image tensor (`[N, 1, H, W]`).
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The labels, parallel to the image batch axis.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the dataset holds no samples (never constructible through
    /// [`Dataset::new`], but possible after an empty [`Dataset::subset`]).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Image height (= width).
    pub fn hw(&self) -> usize {
        self.images.dims()[2]
    }

    /// Channel count (1 for static images, the frame count for stacked
    /// temporal sequences).
    pub fn channels(&self) -> usize {
        self.images.dims()[1]
    }

    /// Copies the samples at `indices` into a new dataset.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn gather(&self, indices: &[usize]) -> Dataset {
        let dims = self.images.dims();
        let sample_len: usize = dims[1..].iter().product();
        let mut data = Vec::with_capacity(indices.len() * sample_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(
                i < self.len(),
                "index {i} out of range for {} samples",
                self.len()
            );
            data.extend_from_slice(&self.images.data()[i * sample_len..(i + 1) * sample_len]);
            labels.push(self.labels[i]);
        }
        Dataset {
            images: Tensor::from_vec(data, &[indices.len(), dims[1], dims[2], dims[3]]),
            labels,
            classes: self.classes,
        }
    }

    /// The first `n` samples (all samples if `n >= len`). The paper's
    /// Algorithm 1 browses a fixed test subset; this is how the presets
    /// bound attack cost.
    pub fn subset(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        self.gather(&(0..n).collect::<Vec<_>>())
    }

    /// Splits into `(train, test)` with the first `train_frac` fraction in
    /// train. Call [`Dataset::shuffled`] first for a random split.
    ///
    /// # Panics
    ///
    /// Panics if `train_frac` is outside `(0, 1)`.
    pub fn split(&self, train_frac: f32) -> (Dataset, Dataset) {
        assert!(
            train_frac > 0.0 && train_frac < 1.0,
            "train fraction must be in (0, 1), got {train_frac}"
        );
        let n_train = ((self.len() as f32) * train_frac).round() as usize;
        let n_train = n_train.clamp(1, self.len() - 1);
        let train = self.gather(&(0..n_train).collect::<Vec<_>>());
        let test = self.gather(&(n_train..self.len()).collect::<Vec<_>>());
        (train, test)
    }

    /// A copy with samples in random order.
    pub fn shuffled<R: Rng>(&self, rng: &mut R) -> Dataset {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        self.gather(&order)
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Splits into `k` folds for cross-validation: returns, for fold `i`,
    /// the `(train, validation)` pair where validation is every `k`-th
    /// sample starting at `i` (stratification comes from shuffling first).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > len`.
    pub fn k_folds(&self, k: usize) -> Vec<(Dataset, Dataset)> {
        assert!(k >= 2, "need at least two folds, got {k}");
        assert!(
            k <= self.len(),
            "cannot make {k} folds from {} samples",
            self.len()
        );
        (0..k)
            .map(|fold| {
                let (mut train_idx, mut val_idx) = (Vec::new(), Vec::new());
                for i in 0..self.len() {
                    if i % k == fold {
                        val_idx.push(i);
                    } else {
                        train_idx.push(i);
                    }
                }
                (self.gather(&train_idx), self.gather(&val_idx))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let images = Tensor::from_vec(vec![0.5; n * 4], &[n, 1, 2, 2]);
        let labels = (0..n).map(|i| i % 2).collect();
        Dataset::new(images, labels, 2)
    }

    #[test]
    fn construction_validates_ranges() {
        let images = Tensor::from_vec(vec![0.0, 1.0, 0.5, 0.25], &[1, 1, 2, 2]);
        let d = Dataset::new(images, vec![1], 2);
        assert_eq!(d.len(), 1);
        assert_eq!(d.hw(), 2);
    }

    #[test]
    #[should_panic(expected = "pixel values")]
    fn rejects_out_of_range_pixels() {
        let images = Tensor::from_vec(vec![0.0, 1.5, 0.5, 0.25], &[1, 1, 2, 2]);
        Dataset::new(images, vec![0], 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        Dataset::new(Tensor::zeros(&[1, 1, 2, 2]), vec![5], 2);
    }

    #[test]
    fn gather_and_subset() {
        let d = toy(6);
        let g = d.gather(&[5, 0]);
        assert_eq!(g.labels(), &[1, 0]);
        assert_eq!(d.subset(3).len(), 3);
        assert_eq!(d.subset(100).len(), 6);
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = toy(10);
        let (train, test) = d.split(0.7);
        assert_eq!(train.len() + test.len(), 10);
        assert_eq!(train.len(), 7);
    }

    #[test]
    fn k_folds_partition_every_sample_exactly_once() {
        let d = toy(10);
        let folds = d.k_folds(3);
        assert_eq!(folds.len(), 3);
        let mut total_val = 0;
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 10);
            total_val += val.len();
        }
        assert_eq!(total_val, 10, "each sample validates exactly once");
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn k_folds_rejects_k1() {
        toy(4).k_folds(1);
    }

    #[test]
    fn shuffle_preserves_multiset() {
        use rand::SeedableRng;
        let d = toy(20);
        let s = d.shuffled(&mut rand::rngs::StdRng::seed_from_u64(0));
        assert_eq!(s.class_counts(), d.class_counts());
        assert_eq!(s.len(), d.len());
    }
}
