//! Replica workers: the consumers of the batch queue.
//!
//! Each worker owns one model replica ([`Scorer`]) and loops: pull a
//! micro-batch, run one batched forward for every job's classification,
//! then run each job's certify sweep (certify is deliberately *not*
//! cross-request batched — the PGD sweep is seeded per request content, so
//! per-request execution is what keeps answers batching-invariant). The
//! worker exits when the queue reports drained.
//!
//! Observability follows the obs split: batch sizes and request counts go
//! to the deterministic registry, wall-clock latencies go only to the
//! quarantined timing sink.

use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::batcher::{BatchQueue, BATCH_BOUNDS};
use crate::error::ServeError;
use crate::protocol::Response;
use crate::scorer::Scorer;
use std::sync::Arc;

/// Spawns one worker thread per scorer replica. Each returns the number of
/// jobs it answered, once the queue drains.
pub fn spawn_workers(
    queue: &Arc<BatchQueue>,
    scorers: Vec<Box<dyn Scorer>>,
    max_batch: usize,
    max_wait: Duration,
) -> Vec<JoinHandle<u64>> {
    scorers
        .into_iter()
        .map(|scorer| {
            let queue = Arc::clone(queue);
            thread::spawn(move || worker_loop(&queue, scorer, max_batch, max_wait))
        })
        .collect()
}

fn worker_loop(
    queue: &BatchQueue,
    mut scorer: Box<dyn Scorer>,
    max_batch: usize,
    max_wait: Duration,
) -> u64 {
    let mut served: u64 = 0;
    while let Some(batch) = queue.next_batch(max_batch, max_wait) {
        obs::observe("serve/batch_size", batch.len() as f64, BATCH_BOUNDS);
        let inputs: Vec<&[f32]> = batch.iter().map(|j| j.pixels.as_slice()).collect();
        let outcomes = {
            let _s = obs::span("serve/classify");
            scorer.classify_batch(&inputs)
        };
        for (i, job) in batch.into_iter().enumerate() {
            let response = match outcomes.get(i) {
                Some(outcome) => {
                    let mut r = Response::ack(job.id);
                    r.label = Some(outcome.label);
                    r.confidence = Some(outcome.confidence);
                    r.scores = Some(outcome.scores.clone());
                    if !job.epsilons.is_empty() {
                        let _s = obs::span("serve/certify");
                        r.robustness = Some(scorer.certify(&job.pixels, outcome, &job.epsilons));
                    }
                    r
                }
                // The scorer broke its one-outcome-per-input contract;
                // answer the orphaned job with a typed error.
                None => Response::failure(
                    job.id,
                    &ServeError::Internal("replica returned too few outcomes".into()),
                ),
            };
            obs::counter_add("serve/answered", 1);
            obs::timing_gauge_add(
                "serve/request_nanos",
                u64::try_from(job.accepted_at.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
            served += 1;
            // A gone receiver means the connection died mid-flight; the
            // work is simply dropped with it.
            let _ = job.reply.send(response);
        }
    }
    served
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::ScoreJob;
    use crate::protocol::RobustnessPoint;
    use crate::scorer::ClassifyOutcome;
    use std::sync::mpsc;
    use std::time::Instant;

    /// Deterministic stub: label = index of the max pixel, scores echo the
    /// pixels, every ε below 0.5 is "robust".
    struct Stub;

    impl Scorer for Stub {
        fn input_len(&self) -> usize {
            4
        }
        fn num_classes(&self) -> usize {
            4
        }
        fn classify_batch(&mut self, inputs: &[&[f32]]) -> Vec<ClassifyOutcome> {
            inputs
                .iter()
                .map(|px| {
                    let (label, best) =
                        px.iter()
                            .enumerate()
                            .fold(
                                (0usize, f32::MIN),
                                |(bi, bv), (i, &v)| {
                                    if v > bv {
                                        (i, v)
                                    } else {
                                        (bi, bv)
                                    }
                                },
                            );
                    ClassifyOutcome {
                        label: label as u32,
                        confidence: best,
                        scores: px.to_vec(),
                    }
                })
                .collect()
        }
        fn certify(
            &mut self,
            _pixels: &[f32],
            clean: &ClassifyOutcome,
            epsilons: &[f32],
        ) -> Vec<RobustnessPoint> {
            epsilons
                .iter()
                .map(|&eps| RobustnessPoint {
                    eps,
                    robust: eps < 0.5,
                    adv_label: clean.label,
                    adv_confidence: clean.confidence,
                })
                .collect()
        }
    }

    #[test]
    fn workers_answer_classify_and_certify_jobs_then_drain() {
        let queue = Arc::new(BatchQueue::new(16));
        let handles = spawn_workers(
            &queue,
            vec![Box::new(Stub), Box::new(Stub)],
            4,
            Duration::from_millis(1),
        );
        let mut receivers = Vec::new();
        for id in 0..6u64 {
            let (tx, rx) = mpsc::channel();
            let mut pixels = vec![0.0f32; 4];
            if let Some(slot) = pixels.get_mut((id % 4) as usize) {
                *slot = 1.0;
            }
            queue
                .submit(ScoreJob {
                    id,
                    pixels,
                    epsilons: if id == 0 { vec![0.1, 0.9] } else { Vec::new() },
                    reply: tx,
                    accepted_at: Instant::now(),
                })
                .unwrap();
            receivers.push(rx);
        }
        for (id, rx) in receivers.iter().enumerate() {
            let resp = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert!(resp.ok);
            assert_eq!(resp.id, id as u64);
            assert_eq!(resp.label, Some((id % 4) as u32));
            if id == 0 {
                let profile = resp.robustness.unwrap();
                assert_eq!(profile.len(), 2);
                assert!(profile[0].robust && !profile[1].robust);
            } else {
                assert!(resp.robustness.is_none());
            }
        }
        queue.shutdown();
        let served: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(served, 6);
    }
}
