//! The micro-batching admission queue.
//!
//! Concurrent connections submit [`ScoreJob`]s into one bounded queue;
//! replica workers pull *batches* off it so one SNN forward (whose T-step
//! LIF loop dominates the cost) amortises over up to `max_batch` requests.
//! A batch tick is: take the first job as soon as one exists, then linger
//! up to `max_wait` for more to coalesce — the classic latency/throughput
//! knob, tiny by default.
//!
//! Admission control is a hard bound: at `capacity` queued jobs, `submit`
//! refuses with [`ServeError::Overloaded`] instead of queueing — the caller
//! turns that into a typed response and the server keeps serving. Shutdown
//! is a drain: no new admissions, workers finish what is queued, then
//! [`BatchQueue::next_batch`] returns `None` and they exit.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::error::ServeError;
use crate::protocol::Response;

/// Histogram bounds for the batch-size distribution (`serve/batch_size`).
pub const BATCH_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Histogram bounds for the queue depth observed at admission
/// (`serve/queue_depth`).
pub const DEPTH_BOUNDS: &[f64] = &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// One admitted scoring request, owned by the queue until a worker takes it.
#[derive(Debug)]
pub struct ScoreJob {
    /// Client correlation id, echoed in the response.
    pub id: u64,
    /// Flattened input image (already length-validated).
    pub pixels: Vec<f32>,
    /// Noise budgets to certify at; empty for plain classification.
    pub epsilons: Vec<f32>,
    /// Where the worker sends the finished [`Response`].
    pub reply: mpsc::Sender<Response>,
    /// When admission happened — read only by the quarantined latency sink.
    pub accepted_at: Instant,
}

#[derive(Debug)]
struct QueueState {
    jobs: VecDeque<ScoreJob>,
    draining: bool,
}

/// The bounded, condvar-signalled batch queue shared by all connection
/// handlers (producers) and replica workers (consumers).
#[derive(Debug)]
pub struct BatchQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
}

impl BatchQueue {
    /// A queue admitting at most `capacity` (≥ 1) jobs at a time.
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                draining: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits one job, or refuses it with a typed error.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity,
    /// [`ServeError::ShuttingDown`] once a drain has begun.
    pub fn submit(&self, job: ScoreJob) -> Result<(), ServeError> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.draining {
            return Err(ServeError::ShuttingDown);
        }
        if state.jobs.len() >= self.capacity {
            obs::counter_add("serve/overloaded", 1);
            return Err(ServeError::Overloaded {
                capacity: self.capacity,
            });
        }
        obs::observe("serve/queue_depth", state.jobs.len() as f64, DEPTH_BOUNDS);
        state.jobs.push_back(job);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next micro-batch: waits until at least one job is
    /// queued, then lingers up to `max_wait` (or until `max_batch` jobs
    /// have coalesced, or a drain begins) before taking up to `max_batch`
    /// jobs. Returns `None` exactly when the queue is draining *and* empty
    /// — the worker's signal to exit after finishing all admitted work.
    pub fn next_batch(&self, max_batch: usize, max_wait: Duration) -> Option<Vec<ScoreJob>> {
        let max_batch = max_batch.max(1);
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if !state.jobs.is_empty() {
                break;
            }
            if state.draining {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let deadline = Instant::now() + max_wait;
        while state.jobs.len() < max_batch && !state.draining {
            let now = Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            let (guard, timed_out) = self
                .available
                .wait_timeout(state, left)
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            if timed_out.timed_out() {
                break;
            }
        }
        let take = state.jobs.len().min(max_batch);
        let batch: Vec<ScoreJob> = state.jobs.drain(..take).collect();
        let more = !state.jobs.is_empty();
        drop(state);
        if more {
            // Jobs remain: make sure another waiting worker wakes for them.
            self.available.notify_one();
        }
        // The batch-size histogram is recorded by the consuming worker, not
        // here: this function mixes deadline arithmetic (`Instant`) with the
        // metric write, and the deterministic registry must never sit
        // downstream of a wall-clock-reading function.
        Some(batch)
    }

    /// Begins the drain: refuses new admissions and wakes every waiter.
    /// Already-admitted jobs will still be batched and answered.
    pub fn shutdown(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.draining = true;
        drop(state);
        self.available.notify_all();
    }

    /// Jobs currently queued (for tests and diagnostics).
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .jobs
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    fn job(id: u64) -> (ScoreJob, mpsc::Receiver<Response>) {
        let (tx, rx) = mpsc::channel();
        (
            ScoreJob {
                id,
                pixels: vec![0.0; 4],
                epsilons: Vec::new(),
                reply: tx,
                accepted_at: Instant::now(),
            },
            rx,
        )
    }

    #[test]
    fn overload_is_a_typed_refusal() {
        let q = BatchQueue::new(2);
        let (a, _ra) = job(1);
        let (b, _rb) = job(2);
        let (c, _rc) = job(3);
        q.submit(a).unwrap();
        q.submit(b).unwrap();
        let err = q.submit(c).unwrap_err();
        assert_eq!(err, ServeError::Overloaded { capacity: 2 });
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn next_batch_takes_up_to_max_batch_in_fifo_order() {
        let q = BatchQueue::new(8);
        let mut keep = Vec::new();
        for id in 0..5 {
            let (j, r) = job(id);
            q.submit(j).unwrap();
            keep.push(r);
        }
        let batch = q.next_batch(3, Duration::from_millis(1)).unwrap();
        let ids: Vec<u64> = batch.iter().map(|j| j.id).collect();
        assert_eq!(ids, [0, 1, 2]);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn drain_serves_queued_jobs_then_signals_exit() {
        let q = BatchQueue::new(8);
        let (j, _r) = job(1);
        q.submit(j).unwrap();
        q.shutdown();
        let (late, _r2) = job(2);
        assert_eq!(q.submit(late).unwrap_err(), ServeError::ShuttingDown);
        let batch = q.next_batch(4, Duration::from_millis(1)).unwrap();
        assert_eq!(batch.len(), 1);
        assert!(q.next_batch(4, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn blocked_worker_wakes_on_shutdown() {
        let q = Arc::new(BatchQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.next_batch(4, Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(20));
        q.shutdown();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn lingering_batch_coalesces_later_submissions() {
        let q = Arc::new(BatchQueue::new(8));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.next_batch(4, Duration::from_millis(200)));
        std::thread::sleep(Duration::from_millis(20));
        let mut keep = Vec::new();
        for id in 0..2 {
            let (j, r) = job(id);
            q.submit(j).unwrap();
            keep.push(r);
        }
        let batch = h.join().unwrap().unwrap();
        assert_eq!(batch.len(), 2, "both jobs should coalesce into one tick");
    }
}
