//! Typed failures of the serving layer.
//!
//! Everything a client can trigger — malformed frames, oversized frames,
//! wrong-shaped inputs, a full queue — maps to a [`ServeError`] that is
//! written back as a JSON error response. Nothing a client sends may panic
//! the server (enforced by the `no-panic-in-io` armor-lint scope over this
//! crate) or tear down any connection other than its own.

use std::fmt;

/// Everything that can go wrong handling one request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The frame was not valid JSON, or not a known request shape.
    BadRequest(String),
    /// The frame exceeded the per-frame byte limit and was discarded.
    Oversized {
        /// The limit that was exceeded ([`crate::protocol::MAX_FRAME_BYTES`]).
        limit: usize,
    },
    /// The admission queue is full; the request was refused, not queued.
    /// Retry later — the server keeps serving.
    Overloaded {
        /// The queue capacity that was hit.
        capacity: usize,
    },
    /// The server is draining for shutdown and admits no new work.
    ShuttingDown,
    /// `pixels` has the wrong length for the model being served.
    WrongInputLen {
        /// The model's flattened input length.
        expected: usize,
        /// The length actually sent.
        got: usize,
    },
    /// An ε in `epsilons` is not a finite, non-negative number.
    BadEpsilon {
        /// Position of the offending value in the request's sweep.
        index: usize,
    },
    /// The server failed internally (e.g. a replica died mid-request).
    Internal(String),
}

impl ServeError {
    /// Stable machine-readable kind, used as the `error.kind` field of an
    /// error response and as a metrics label.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Oversized { .. } => "oversized",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::WrongInputLen { .. } => "wrong_input_len",
            ServeError::BadEpsilon { .. } => "bad_epsilon",
            ServeError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(why) => write!(f, "bad request: {why}"),
            ServeError::Oversized { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit and was discarded")
            }
            ServeError::Overloaded { capacity } => write!(
                f,
                "server overloaded: admission queue is at capacity {capacity}; retry later"
            ),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::WrongInputLen { expected, got } => write!(
                f,
                "pixels has length {got}, the served model expects {expected}"
            ),
            ServeError::BadEpsilon { index } => {
                write!(f, "epsilons[{index}] is not a finite, non-negative number")
            }
            ServeError::Internal(why) => write!(f, "internal server error: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let all = [
            ServeError::BadRequest("x".into()),
            ServeError::Oversized { limit: 1 },
            ServeError::Overloaded { capacity: 1 },
            ServeError::ShuttingDown,
            ServeError::WrongInputLen {
                expected: 4,
                got: 3,
            },
            ServeError::BadEpsilon { index: 0 },
            ServeError::Internal("x".into()),
        ];
        let mut kinds: Vec<&str> = all.iter().map(ServeError::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len(), "kinds must be unique");
    }

    #[test]
    fn display_mentions_the_limit_and_capacity() {
        assert!(ServeError::Oversized { limit: 64 }
            .to_string()
            .contains("64"));
        assert!(ServeError::Overloaded { capacity: 8 }
            .to_string()
            .contains('8'));
    }
}
