//! Load generator for `spiking-armor serve`, emitting `BENCH_serve.json`.
//!
//! ```text
//! serve-bench --addr HOST:PORT [--concurrency N] [--requests N]
//!             [--out PATH] [--smoke] [--shutdown]
//! ```
//!
//! `--concurrency` worker connections each fire their share of
//! `--requests` classify frames back-to-back (one in flight per
//! connection), with a deterministic pixel pattern derived from the global
//! request index — so two bench runs against the same checkpoint ask for
//! exactly the same work. The report (schema `bench_serve/v1`) carries the
//! only nondeterministic readings this workspace allows out of a run:
//! throughput and latency quantiles, quarantined in their own artifact
//! exactly like the obs timing sink.
//!
//! `--smoke` shrinks the run to a seconds-scale health check (used by
//! `scripts/check.sh`); `--shutdown` sends the server a shutdown frame
//! after the measurement, so scripted runs can reap the process.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use serde::Serialize;
use serve::Response;

const USAGE: &str = "usage: serve-bench --addr HOST:PORT [--concurrency N] \
[--requests N] [--out PATH] [--smoke] [--shutdown]";

/// The committed baseline's schema identifier.
const SCHEMA: &str = "bench_serve/v1";

#[derive(Debug, Clone)]
struct BenchOptions {
    addr: String,
    concurrency: usize,
    requests: usize,
    out: String,
    shutdown: bool,
}

/// The `BENCH_serve.json` payload.
#[derive(Debug, Serialize)]
struct LatencyMs {
    p50: f64,
    p95: f64,
    p99: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    schema: String,
    concurrency: usize,
    requests: usize,
    reqs_per_sec: f64,
    latency_ms: LatencyMs,
}

fn parse_args(args: &[String]) -> Result<BenchOptions, String> {
    let mut options = BenchOptions {
        addr: "127.0.0.1:7878".to_string(),
        concurrency: 8,
        requests: 256,
        out: "BENCH_serve.json".to_string(),
        shutdown: false,
    };
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--shutdown" => options.shutdown = true,
            "--addr" => {
                options.addr = it
                    .next()
                    .ok_or_else(|| format!("--addr needs a HOST:PORT value\n{USAGE}"))?
                    .clone();
            }
            "--out" => {
                options.out = it
                    .next()
                    .ok_or_else(|| format!("--out needs a file path\n{USAGE}"))?
                    .clone();
            }
            "--concurrency" => {
                options.concurrency = positive(it.next(), "--concurrency")?;
            }
            "--requests" => {
                options.requests = positive(it.next(), "--requests")?;
            }
            other => return Err(format!("unrecognized argument {other:?}\n{USAGE}")),
        }
    }
    if smoke {
        // A seconds-scale health check: enough traffic to exercise
        // coalescing and every percentile index, small enough for CI.
        options.concurrency = options.concurrency.min(2);
        options.requests = options.requests.min(16);
    }
    Ok(options)
}

fn positive(value: Option<&String>, flag: &str) -> Result<usize, String> {
    let value = value.ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?;
    value
        .parse::<usize>()
        .ok()
        .filter(|n| *n > 0)
        .ok_or_else(|| format!("{flag} expects a positive integer, got {value:?}\n{USAGE}"))
}

/// One newline-framed request/response exchange on an open connection.
fn exchange(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    frame: &str,
) -> Result<Response, String> {
    stream
        .write_all(frame.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("cannot send to the server: {e}"))?;
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("cannot read the server's response: {e}"))?;
    if line.is_empty() {
        return Err("the server closed the connection mid-bench".to_string());
    }
    serde_json::from_str(&line).map_err(|e| format!("unparseable response {line:?}: {e}"))
}

fn connect(addr: &str) -> Result<(TcpStream, BufReader<TcpStream>), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .map_err(|e| format!("cannot configure the socket: {e}"))?;
    let reader = stream
        .try_clone()
        .map(BufReader::new)
        .map_err(|e| format!("cannot clone the socket: {e}"))?;
    Ok((stream, reader))
}

/// The classify frame for global request `index`: a deterministic pixel
/// pattern, so every bench run asks the checkpoint for identical work.
fn classify_frame(index: usize, input_len: usize) -> String {
    let mut pixels = String::new();
    for i in 0..input_len {
        if i > 0 {
            pixels.push(',');
        }
        let v = ((i as u64).wrapping_mul(97) + (index as u64).wrapping_mul(41)) % 256;
        let _ = std::fmt::Write::write_fmt(&mut pixels, format_args!("{}", v as f32 / 255.0));
    }
    format!("{{\"id\": {index}, \"kind\": \"classify\", \"pixels\": [{pixels}]}}\n")
}

/// `sorted` must be ascending; returns the nearest-rank quantile in ms.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let last = sorted.len() - 1;
    let idx = ((p / 100.0) * last as f64).round() as usize;
    sorted.get(idx.min(last)).copied().unwrap_or(0.0)
}

/// One worker: a single connection firing its requests back-to-back.
/// Returns every request's latency in milliseconds.
fn worker(
    addr: &str,
    indices: std::ops::Range<usize>,
    input_len: usize,
) -> Result<Vec<f64>, String> {
    let (mut stream, mut reader) = connect(addr)?;
    let mut latencies = Vec::with_capacity(indices.len());
    for index in indices {
        let frame = classify_frame(index, input_len);
        let start = Instant::now();
        let response = exchange(&mut stream, &mut reader, &frame)?;
        latencies.push(start.elapsed().as_secs_f64() * 1e3);
        if !response.ok {
            return Err(format!("request {index} was refused: {response:?}"));
        }
        if response.id != index as u64 {
            return Err(format!(
                "response id {} does not match request {index}",
                response.id
            ));
        }
    }
    Ok(latencies)
}

fn run(options: &BenchOptions) -> Result<BenchReport, String> {
    // Ask the server for its input shape first — the bench adapts to
    // whatever checkpoint is being served.
    let (mut stream, mut reader) = connect(&options.addr)?;
    let info = exchange(&mut stream, &mut reader, "{\"kind\": \"info\"}\n")?;
    let input_len = info
        .info
        .as_ref()
        .map(|i| i.input_len)
        .ok_or_else(|| format!("the server's info response carried no shape: {info:?}"))?;
    drop((stream, reader));

    let per_worker = options.requests.div_ceil(options.concurrency);
    let started = Instant::now();
    let workers: Vec<_> = (0..options.concurrency)
        .map(|w| {
            let addr = options.addr.clone();
            let lo = (w * per_worker).min(options.requests);
            let hi = ((w + 1) * per_worker).min(options.requests);
            std::thread::spawn(move || worker(&addr, lo..hi, input_len))
        })
        .collect();
    let mut latencies = Vec::with_capacity(options.requests);
    for handle in workers {
        let worker_latencies = handle
            .join()
            .map_err(|_| "a bench worker panicked".to_string())??;
        latencies.extend(worker_latencies);
    }
    let elapsed = started.elapsed().as_secs_f64();

    if options.shutdown {
        let (mut stream, mut reader) = connect(&options.addr)?;
        exchange(&mut stream, &mut reader, "{\"kind\": \"shutdown\"}\n")?;
    }

    latencies.sort_by(f64::total_cmp);
    Ok(BenchReport {
        schema: SCHEMA.to_string(),
        concurrency: options.concurrency,
        requests: latencies.len(),
        reqs_per_sec: if elapsed > 0.0 {
            latencies.len() as f64 / elapsed
        } else {
            0.0
        },
        latency_ms: LatencyMs {
            p50: percentile(&latencies, 50.0),
            p95: percentile(&latencies, 95.0),
            p99: percentile(&latencies, 99.0),
        },
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let report = match run(&options) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let json = match serde_json::to_string_pretty(&report) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("error: cannot serialize the report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&options.out, format!("{json}\n")) {
        eprintln!("error: cannot write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    println!(
        "{}: {} requests at concurrency {} -> {:.1} req/s (p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms)",
        options.out,
        report.requests,
        report.concurrency,
        report.reqs_per_sec,
        report.latency_ms.p50,
        report.latency_ms.p95,
        report.latency_ms.p99
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_shrinks_and_flags_parse() {
        let args: Vec<String> = ["--addr", "127.0.0.1:1234", "--smoke", "--shutdown"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let options = parse_args(&args).unwrap();
        assert_eq!(options.addr, "127.0.0.1:1234");
        assert!(options.shutdown);
        assert!(options.concurrency <= 2);
        assert!(options.requests <= 16);
        assert!(parse_args(&["--concurrency".to_string(), "0".to_string()]).is_err());
        assert!(parse_args(&["--bogus".to_string()]).is_err());
    }

    #[test]
    fn percentiles_use_nearest_rank_on_the_sorted_sample() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 50.0), 51.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
    }

    #[test]
    fn classify_frames_are_deterministic_and_distinct_per_index() {
        assert_eq!(classify_frame(3, 8), classify_frame(3, 8));
        assert_ne!(classify_frame(3, 8), classify_frame(4, 8));
        assert!(classify_frame(0, 4).ends_with("]}\n"));
    }
}
