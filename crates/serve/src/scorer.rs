//! The model abstraction the server replicates.
//!
//! `serve` is model-agnostic: anything implementing [`Scorer`] can be
//! served. The SNN-backed implementation lives in `explore::serving` (this
//! crate must not depend on the experiment stack). Methods take `&mut self`
//! so an implementation can keep warm per-replica buffers — the zero-alloc
//! warm path the tensor `Workspace` layer provides.
//!
//! # Determinism contract
//!
//! For a fixed checkpoint, [`Scorer::classify_batch`] must be *per-sample
//! batch-invariant*: the scores produced for an input are bitwise-identical
//! whatever other inputs share its batch, in any replica, at any thread
//! count. [`Scorer::certify`] must likewise depend only on `(pixels,
//! epsilons)`. The server's batching is then free to vary under load
//! without ever changing an answer; `tests/batch_invariance.rs` enforces
//! exactly this.

use crate::protocol::RobustnessPoint;

/// The clean classification of one input.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifyOutcome {
    /// Predicted label.
    pub label: u32,
    /// Softmax probability of `label`.
    pub confidence: f32,
    /// Full per-class softmax distribution.
    pub scores: Vec<f32>,
}

/// A servable model replica.
pub trait Scorer: Send {
    /// Flattened input length the model expects.
    fn input_len(&self) -> usize;

    /// Number of output classes.
    fn num_classes(&self) -> usize;

    /// Classifies a batch in one forward pass. Must return exactly one
    /// outcome per input, in order, and be per-sample batch-invariant (see
    /// the module docs).
    fn classify_batch(&mut self, inputs: &[&[f32]]) -> Vec<ClassifyOutcome>;

    /// Runs the per-ε adversarial sweep for one input whose clean outcome
    /// is `clean`. Must return one point per ε, in order.
    fn certify(
        &mut self,
        pixels: &[f32],
        clean: &ClassifyOutcome,
        epsilons: &[f32],
    ) -> Vec<RobustnessPoint>;
}
