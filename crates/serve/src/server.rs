//! The TCP front end: accept loop, connection handlers, graceful drain.
//!
//! Thread model (the actor/recorder split from the RL exemplar, adapted):
//! one accept loop, one handler thread per connection (parsing + admission
//! only — never inference), N replica workers consuming the shared
//! [`BatchQueue`]. Handlers block on a per-job reply channel, so slow
//! clients back-pressure themselves while workers keep batching everyone
//! else.
//!
//! Shutdown is cooperative: a `shutdown` frame (or [`Server`] being asked
//! to stop) flips a flag, pokes the accept loop awake, drains the queue —
//! every admitted job still gets its answer — and joins all threads.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::batcher::{BatchQueue, ScoreJob};
use crate::error::ServeError;
use crate::protocol::{Frame, FrameReader, InfoBody, Request, Response, MAX_FRAME_BYTES};
use crate::scorer::Scorer;

/// How long a connection handler blocks in a read before polling the
/// shutdown flag again.
const READ_POLL: Duration = Duration::from_millis(200);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to bind (e.g. `127.0.0.1:7878`; port 0 picks a free port).
    pub addr: String,
    /// Micro-batch size cap per tick.
    pub max_batch: usize,
    /// How long a tick lingers for more requests to coalesce.
    pub max_wait: Duration,
    /// Admission-queue capacity; beyond it requests get `overloaded`.
    pub queue_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".into(),
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            queue_capacity: 64,
        }
    }
}

/// What a finished [`Server::run`] reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Jobs answered by the replica workers (admitted work is never lost).
    pub answered: u64,
}

/// A bound, ready-to-run server. Created by [`Server::bind`], consumed by
/// [`Server::run`].
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    queue: Arc<BatchQueue>,
    workers: Vec<JoinHandle<u64>>,
    stop: Arc<AtomicBool>,
    info: InfoBody,
}

impl Server {
    /// Binds the listener and spawns one worker per scorer replica.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Internal`] when no replicas are given, when
    /// the replicas disagree on model shape, or when the address cannot be
    /// bound.
    pub fn bind(options: &ServeOptions, scorers: Vec<Box<dyn Scorer>>) -> Result<Self, ServeError> {
        let Some(first) = scorers.first() else {
            return Err(ServeError::Internal("no model replicas configured".into()));
        };
        let input_len = first.input_len();
        let classes = first.num_classes();
        if scorers
            .iter()
            .any(|s| s.input_len() != input_len || s.num_classes() != classes)
        {
            return Err(ServeError::Internal(
                "model replicas disagree on input/output shape".into(),
            ));
        }
        let listener = TcpListener::bind(&options.addr)
            .map_err(|e| ServeError::Internal(format!("cannot bind {}: {e}", options.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Internal(format!("cannot resolve bound address: {e}")))?;
        let info = InfoBody {
            input_len,
            classes,
            max_batch: options.max_batch.max(1),
            replicas: scorers.len(),
            queue_capacity: options.queue_capacity.max(1),
        };
        let queue = Arc::new(BatchQueue::new(options.queue_capacity));
        let workers =
            crate::worker::spawn_workers(&queue, scorers, options.max_batch, options.max_wait);
        Ok(Self {
            listener,
            addr,
            queue,
            workers,
            stop: Arc::new(AtomicBool::new(false)),
            info,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that makes the running server drain and exit, as if a
    /// `shutdown` frame had arrived.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            stop: Arc::clone(&self.stop),
            addr: self.addr,
        }
    }

    /// Serves until a `shutdown` frame (or [`StopHandle::stop`]) arrives,
    /// then drains and joins everything. Every admitted request is
    /// answered before workers exit.
    pub fn run(self) -> ServeSummary {
        let connections = Arc::new(AtomicU64::new(0));
        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        for incoming in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match incoming {
                Ok(s) => s,
                // Transient accept failures (e.g. ECONNABORTED) must not
                // kill the server.
                Err(_) => continue,
            };
            connections.fetch_add(1, Ordering::Relaxed);
            obs::counter_add("serve/connections", 1);
            let queue = Arc::clone(&self.queue);
            let stop = Arc::clone(&self.stop);
            let info = self.info.clone();
            let addr = self.addr;
            handlers.push(thread::spawn(move || {
                handle_connection(stream, &queue, &stop, &info, addr);
            }));
        }
        // Drain: no new admissions; workers answer what is queued and exit.
        self.queue.shutdown();
        let mut answered: u64 = 0;
        for worker in self.workers {
            answered += worker.join().unwrap_or(0);
        }
        for handler in handlers {
            let _ = handler.join();
        }
        ServeSummary {
            connections: connections.load(Ordering::Relaxed),
            answered,
        }
    }
}

/// Remote control for a running [`Server`] (used by the CLI to install a
/// signal-ish stop path and by tests).
#[derive(Debug, Clone)]
pub struct StopHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl StopHandle {
    /// Asks the server to drain and exit.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        poke_accept_loop(self.addr);
    }
}

/// Unblocks a listener stuck in `accept` by making one throwaway
/// connection to it.
fn poke_accept_loop(addr: SocketAddr) {
    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
}

fn handle_connection(
    mut stream: TcpStream,
    queue: &BatchQueue,
    stop: &AtomicBool,
    info: &InfoBody,
    addr: SocketAddr,
) {
    // The read half polls so the handler can notice a drain started by
    // another connection; the write half stays blocking.
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = FrameReader::new(BufReader::new(read_half));
    loop {
        match reader.next_frame() {
            Frame::Idle => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Frame::Eof => return,
            Frame::Oversized => {
                obs::counter_add("serve/errors/oversized", 1);
                let resp = Response::failure(
                    0,
                    &ServeError::Oversized {
                        limit: MAX_FRAME_BYTES,
                    },
                );
                if write_response(&mut stream, &resp).is_err() {
                    return;
                }
            }
            Frame::Line(text) => {
                if text.trim().is_empty() {
                    continue;
                }
                obs::counter_add("serve/frames", 1);
                let (resp, is_shutdown) = handle_line(&text, queue, info);
                if !resp.ok {
                    obs::counter_add("serve/errors", 1);
                }
                let write_failed = write_response(&mut stream, &resp).is_err();
                if is_shutdown {
                    stop.store(true, Ordering::SeqCst);
                    poke_accept_loop(addr);
                    return;
                }
                if write_failed {
                    return;
                }
                // A drain begun elsewhere ends even never-idle connections
                // after their in-flight frame is answered.
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Parses and dispatches one frame. The boolean is `true` when the frame
/// was a `shutdown` request (acknowledged in the returned response).
fn handle_line(text: &str, queue: &BatchQueue, info: &InfoBody) -> (Response, bool) {
    let req: Request = match serde_json::from_str(text) {
        Ok(r) => r,
        Err(e) => {
            return (
                Response::failure(0, &ServeError::BadRequest(e.to_string())),
                false,
            );
        }
    };
    match req.kind.as_str() {
        "ping" => (Response::ack(req.id), false),
        "info" => {
            let mut r = Response::ack(req.id);
            r.info = Some(info.clone());
            (r, false)
        }
        "shutdown" => (Response::ack(req.id), true),
        "classify" | "certify" => {
            let resp = match score_request(&req, queue, info) {
                Ok(r) => r,
                Err(e) => Response::failure(req.id, &e),
            };
            (resp, false)
        }
        other => (
            Response::failure(
                req.id,
                &ServeError::BadRequest(format!("unknown request kind {other:?}")),
            ),
            false,
        ),
    }
}

/// Validates a classify/certify request, admits it, and blocks for the
/// worker's answer.
fn score_request(
    req: &Request,
    queue: &BatchQueue,
    info: &InfoBody,
) -> Result<Response, ServeError> {
    let Some(pixels) = req.pixels.as_ref() else {
        return Err(ServeError::BadRequest(format!(
            "{:?} requires a `pixels` array",
            req.kind
        )));
    };
    if pixels.len() != info.input_len {
        return Err(ServeError::WrongInputLen {
            expected: info.input_len,
            got: pixels.len(),
        });
    }
    let epsilons: Vec<f32> = if req.kind == "certify" {
        let Some(eps) = req.epsilons.as_ref().filter(|e| !e.is_empty()) else {
            return Err(ServeError::BadRequest(
                "\"certify\" requires a non-empty `epsilons` array".into(),
            ));
        };
        if let Some(index) = eps.iter().position(|e| !e.is_finite() || *e < 0.0) {
            return Err(ServeError::BadEpsilon { index });
        }
        eps.clone()
    } else {
        Vec::new()
    };
    let (reply, answer) = mpsc::channel();
    queue.submit(ScoreJob {
        id: req.id,
        pixels: pixels.clone(),
        epsilons,
        reply,
        // armor-lint: allow(transitive-determinism) -- this timestamp is read only by the quarantined latency sink (timing_gauge_add); the queue-depth histogram submit() writes never sees it
        accepted_at: std::time::Instant::now(),
    })?;
    // Admitted jobs are always answered (drain semantics), so a closed
    // channel means a replica died — an internal fault, not a hang.
    answer
        .recv()
        .map_err(|_| ServeError::Internal("replica dropped the request".into()))
}

/// Writes one response line. Serialization failures degrade to a minimal
/// hand-built error line rather than killing the connection.
fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let text = serde_json::to_string(resp).unwrap_or_else(|_| {
        format!(
            "{{\"id\":{},\"ok\":false,\"error\":{{\"kind\":\"internal\",\
             \"message\":\"response serialization failed\"}}}}",
            resp.id
        )
    });
    stream.write_all(text.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}
