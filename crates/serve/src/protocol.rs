//! The newline-framed JSON wire protocol.
//!
//! One request per line, one response per line, UTF-8 JSON, `\n` terminated
//! (see DESIGN.md §13 for the grammar). The framing layer is deliberately
//! dumb: [`FrameReader`] splits the byte stream into lines under a hard
//! per-frame byte budget ([`MAX_FRAME_BYTES`]) and *resynchronises* after an
//! oversized frame by discarding to the next newline — a hostile client can
//! cost bandwidth but never memory.
//!
//! Requests come in five kinds:
//!
//! | `kind`       | fields used            | reply                        |
//! |--------------|------------------------|------------------------------|
//! | `"ping"`     | `id`                   | `{ok: true}`                 |
//! | `"info"`     | `id`                   | model + server parameters    |
//! | `"classify"` | `id`, `pixels`         | label, confidence, scores    |
//! | `"certify"`  | `id`, `pixels`, `epsilons` | classify + per-ε robustness |
//! | `"shutdown"` | `id`                   | `{ok: true}`, then drain     |
//!
//! `scores` carries the full per-class softmax so the determinism contract
//! is checkable down to the bit: the same `pixels` must yield the same
//! `scores` bytes regardless of batching, replica, or thread count.

use std::io::{self, BufRead};

use serde::{Deserialize, Serialize};

/// Hard per-frame byte budget (1 MiB), newline excluded. A 28×28 grayscale
/// image as JSON floats is ~10 KiB, so the limit is generous for real
/// requests while bounding per-connection memory.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// One request line. Unknown `kind`s are rejected by the dispatcher, not
/// the parser, so the error can echo the offending value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response. Defaults to 0.
    #[serde(default)]
    pub id: u64,
    /// `"ping"`, `"info"`, `"classify"`, `"certify"`, or `"shutdown"`.
    pub kind: String,
    /// Flattened input image in `[0, 1]`, row-major. Required for
    /// `classify` and `certify`.
    #[serde(default)]
    pub pixels: Option<Vec<f32>>,
    /// Noise budgets to certify at. Required (non-empty) for `certify`.
    #[serde(default)]
    pub epsilons: Option<Vec<f32>>,
}

/// One `(ε, outcome)` point of a certify sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessPoint {
    /// The noise budget attacked at.
    pub eps: f32,
    /// `true` when the PGD adversary failed to change the predicted label.
    pub robust: bool,
    /// The label predicted under attack.
    pub adv_label: u32,
    /// The confidence of `adv_label` under attack.
    pub adv_confidence: f32,
}

/// The `info` response body: what is being served, and how.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InfoBody {
    /// Flattened input length the model expects.
    pub input_len: usize,
    /// Number of output classes.
    pub classes: usize,
    /// Micro-batch size cap.
    pub max_batch: usize,
    /// Number of model replicas.
    pub replicas: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
}

/// The `error` field of a failed response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Stable machine-readable kind ([`crate::ServeError::kind`]).
    pub kind: String,
    /// Human-readable description.
    pub message: String,
}

/// One response line. `ok` discriminates: success responses populate the
/// fields their request kind produces, error responses populate `error`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The request's correlation id (0 when the frame never parsed).
    pub id: u64,
    /// `true` on success.
    pub ok: bool,
    /// Predicted label (classify/certify).
    #[serde(default)]
    pub label: Option<u32>,
    /// Confidence of `label` (classify/certify).
    #[serde(default)]
    pub confidence: Option<f32>,
    /// Full per-class softmax scores (classify/certify) — the bitwise
    /// determinism contract is stated over these.
    #[serde(default)]
    pub scores: Option<Vec<f32>>,
    /// Per-ε robustness profile (certify).
    #[serde(default)]
    pub robustness: Option<Vec<RobustnessPoint>>,
    /// Server/model parameters (info).
    #[serde(default)]
    pub info: Option<InfoBody>,
    /// Failure description (when `ok` is false).
    #[serde(default)]
    pub error: Option<ErrorBody>,
}

impl Response {
    /// An empty success response (ping/shutdown acknowledgements).
    pub fn ack(id: u64) -> Self {
        Self {
            id,
            ok: true,
            label: None,
            confidence: None,
            scores: None,
            robustness: None,
            info: None,
            error: None,
        }
    }

    /// An error response for `err`.
    pub fn failure(id: u64, err: &crate::ServeError) -> Self {
        let mut r = Self::ack(id);
        r.ok = false;
        r.error = Some(ErrorBody {
            kind: err.kind().to_string(),
            message: err.to_string(),
        });
        r
    }
}

/// One framing event from a [`FrameReader`].
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A complete line (newline stripped) within the byte budget.
    Line(String),
    /// A line crossed [`MAX_FRAME_BYTES`]; its remainder is discarded up to
    /// the next newline, after which framing resynchronises.
    Oversized,
    /// The read timed out (or would block) with no complete line buffered —
    /// poll again. Lets a connection handler check the shutdown flag.
    Idle,
    /// End of stream. A partial unterminated line at EOF is dropped: an
    /// unterminated frame was never committed by the client.
    Eof,
}

/// Incremental newline framer over any [`BufRead`] with a hard per-line
/// byte budget and oversize resynchronisation.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    line: Vec<u8>,
    discarding: bool,
}

impl<R: BufRead> FrameReader<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            line: Vec::new(),
            discarding: false,
        }
    }

    /// Reads until one framing event is available. Never returns raw I/O
    /// errors: timeouts map to [`Frame::Idle`], everything else to
    /// [`Frame::Eof`] (a broken connection is treated as a disconnect).
    pub fn next_frame(&mut self) -> Frame {
        loop {
            let (consumed, event) = {
                let available = match self.inner.fill_buf() {
                    Ok(bytes) => bytes,
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock
                                | io::ErrorKind::TimedOut
                                | io::ErrorKind::Interrupted
                        ) =>
                    {
                        return Frame::Idle;
                    }
                    Err(_) => return Frame::Eof,
                };
                if available.is_empty() {
                    return Frame::Eof;
                }
                match available.iter().position(|&b| b == b'\n') {
                    Some(pos) if self.discarding => {
                        // Tail of an already-reported oversized line: drop
                        // it and resynchronise on the next line.
                        self.discarding = false;
                        self.line.clear();
                        (pos + 1, None)
                    }
                    Some(pos) if self.line.len() + pos > MAX_FRAME_BYTES => {
                        self.line.clear();
                        (pos + 1, Some(Frame::Oversized))
                    }
                    Some(pos) => {
                        self.line.extend(available.iter().take(pos).copied());
                        let text = String::from_utf8_lossy(&self.line).into_owned();
                        self.line.clear();
                        (pos + 1, Some(Frame::Line(text)))
                    }
                    None if self.discarding => (available.len(), None),
                    None if self.line.len() + available.len() > MAX_FRAME_BYTES => {
                        // Report the oversize as soon as the budget is
                        // crossed; keep discarding until the newline.
                        self.discarding = true;
                        self.line.clear();
                        (available.len(), Some(Frame::Oversized))
                    }
                    None => {
                        self.line.extend(available.iter().copied());
                        (available.len(), None)
                    }
                }
            };
            self.inner.consume(consumed);
            if let Some(frame) = event {
                return frame;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frames(bytes: &[u8]) -> Vec<Frame> {
        let mut reader = FrameReader::new(Cursor::new(bytes.to_vec()));
        let mut out = Vec::new();
        loop {
            let f = reader.next_frame();
            let done = f == Frame::Eof;
            out.push(f);
            if done {
                return out;
            }
        }
    }

    #[test]
    fn splits_lines_and_drops_partial_tail() {
        assert_eq!(
            frames(b"a\nbb\nccc"),
            [
                Frame::Line("a".into()),
                Frame::Line("bb".into()),
                Frame::Eof,
            ]
        );
    }

    #[test]
    fn empty_lines_are_frames() {
        assert_eq!(
            frames(b"\n\n"),
            [
                Frame::Line(String::new()),
                Frame::Line(String::new()),
                Frame::Eof
            ]
        );
    }

    #[test]
    fn oversized_line_is_reported_once_and_resyncs() {
        let mut bytes = vec![b'x'; MAX_FRAME_BYTES + 10];
        bytes.push(b'\n');
        bytes.extend_from_slice(b"ok\n");
        assert_eq!(
            frames(&bytes),
            [Frame::Oversized, Frame::Line("ok".into()), Frame::Eof]
        );
    }

    #[test]
    fn a_line_exactly_at_the_budget_passes() {
        let mut bytes = vec![b'y'; MAX_FRAME_BYTES];
        bytes.push(b'\n');
        let got = frames(&bytes);
        assert_eq!(got.len(), 2);
        assert!(matches!(&got[0], Frame::Line(l) if l.len() == MAX_FRAME_BYTES));
    }

    #[test]
    fn invalid_utf8_is_replaced_not_fatal() {
        assert_eq!(
            frames(b"\xff\xfe\n"),
            [Frame::Line("\u{fffd}\u{fffd}".into()), Frame::Eof]
        );
    }

    #[test]
    fn requests_round_trip() {
        let req = Request {
            id: 7,
            kind: "certify".into(),
            pixels: Some(vec![0.0, 1.0]),
            epsilons: Some(vec![0.25]),
        };
        let text = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&text).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn request_id_defaults_to_zero() {
        let req: Request = serde_json::from_str("{\"kind\": \"ping\"}").unwrap();
        assert_eq!(req.id, 0);
        assert_eq!(req.pixels, None);
    }

    #[test]
    fn responses_round_trip_bitwise() {
        let mut resp = Response::ack(3);
        resp.label = Some(2);
        resp.confidence = Some(0.7182818);
        resp.scores = Some(vec![0.1, 0.7182818, f32::MIN_POSITIVE]);
        resp.robustness = Some(vec![RobustnessPoint {
            eps: 0.3,
            robust: false,
            adv_label: 4,
            adv_confidence: 0.51,
        }]);
        let text = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&text).unwrap();
        let bits = |v: &Option<Vec<f32>>| -> Vec<u32> {
            v.iter().flatten().map(|x| x.to_bits()).collect()
        };
        assert_eq!(bits(&back.scores), bits(&resp.scores));
        assert_eq!(back, resp);
    }

    #[test]
    fn failure_response_carries_the_kind() {
        let resp = Response::failure(9, &crate::ServeError::Overloaded { capacity: 4 });
        assert!(!resp.ok);
        let err = resp.error.unwrap();
        assert_eq!(err.kind, "overloaded");
        assert!(err.message.contains('4'));
    }
}
