//! Batched robustness-scoring service.
//!
//! The source paper (El-Allami et al. 2021) computes robustness *offline*:
//! a `(V_th, T)` grid of SNNs is trained and PGD-swept, and the secure cell
//! is picked from the resulting surface. This crate is the deployment half
//! the ROADMAP's north star asks for: a long-lived TCP service that loads
//! one grid-trained checkpoint and answers classification and per-ε
//! robustness-certification requests online.
//!
//! * [`protocol`] — newline-framed JSON: [`Request`] in, [`Response`]
//!   out, with a hard per-frame byte
//!   budget and oversize resynchronisation ([`protocol::FrameReader`]).
//! * [`batcher`] — the bounded micro-batching admission queue
//!   ([`BatchQueue`]): concurrent requests coalesce into one SNN forward
//!   per tick; at capacity, requests are *refused* with a typed
//!   [`ServeError::Overloaded`], never queued unboundedly.
//! * [`scorer`] — the model abstraction ([`Scorer`]); the crate is
//!   model-agnostic and the SNN implementation lives in `explore::serving`.
//! * [`worker`] — N replica workers, each owning one scorer with warm
//!   per-replica buffers.
//! * [`server`] — accept loop, per-connection handlers, graceful drain.
//!
//! # Determinism contract
//!
//! For a fixed checkpoint, the `scores` (and certify verdicts) returned
//! for a given input are **bitwise-identical** regardless of how requests
//! were micro-batched, which replica answered, or the thread count —
//! enforced end-to-end by `tests/batch_invariance.rs`. Wall-clock latency
//! exists only in the quarantined obs timing sink; every other metric this
//! crate records is a deterministic function of the request history.
//!
//! Error handling is total: any bytes a client sends produce a typed
//! response or a dropped connection, never a panic (`no-panic-in-io` lint
//! scope covers this crate).

#![forbid(unsafe_code)]

pub mod batcher;
pub mod error;
pub mod protocol;
pub mod scorer;
pub mod server;
pub mod worker;

pub use batcher::{BatchQueue, ScoreJob};
pub use error::ServeError;
pub use protocol::{
    ErrorBody, Frame, FrameReader, InfoBody, Request, Response, RobustnessPoint, MAX_FRAME_BYTES,
};
pub use scorer::{ClassifyOutcome, Scorer};
pub use server::{ServeOptions, ServeSummary, Server, StopHandle};
pub use worker::spawn_workers;
