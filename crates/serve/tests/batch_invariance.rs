//! The serve determinism contract, end to end: the scores a client
//! receives are **bitwise identical** no matter how its request was
//! micro-batched, which replica answered, or how many kernel threads the
//! model used. One SNN is trained once; real servers are then booted over
//! the full `(max_batch, replicas, threads)` matrix and hit with the same
//! concurrent request mix; every response must match the reference bits.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use explore::serving::SnnScorer;
use explore::{pipeline, presets};
use serve::{Response, ServeOptions, Server};

/// One client's view of a response, reduced to exact bits.
#[derive(Debug, PartialEq, Eq)]
struct ResponseBits {
    ok: bool,
    label: Option<u32>,
    confidence: Option<u32>,
    scores: Option<Vec<u32>>,
    robustness: Option<Vec<(u32, bool, u32, u32)>>,
}

impl ResponseBits {
    fn of(r: &Response) -> Self {
        Self {
            ok: r.ok,
            label: r.label,
            confidence: r.confidence.map(f32::to_bits),
            scores: r
                .scores
                .as_ref()
                .map(|s| s.iter().map(|v| v.to_bits()).collect()),
            robustness: r.robustness.as_ref().map(|points| {
                points
                    .iter()
                    .map(|p| {
                        (
                            p.eps.to_bits(),
                            p.robust,
                            p.adv_label,
                            p.adv_confidence.to_bits(),
                        )
                    })
                    .collect()
            }),
        }
    }
}

fn image(tag: u64, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| (((i as u64).wrapping_mul(131) + tag * 29) % 256) as f32 / 255.0)
        .collect()
}

/// The request mix: 8 classifies and 4 certifies over distinct images.
fn request_frames() -> Vec<(u64, String)> {
    let mut frames = Vec::new();
    for id in 0..12u64 {
        let pixels: Vec<String> = image(id, 64).iter().map(|v| format!("{v}")).collect();
        let pixels = pixels.join(",");
        let frame = if id % 3 == 2 {
            format!(
                "{{\"id\": {id}, \"kind\": \"certify\", \"pixels\": [{pixels}], \
                 \"epsilons\": [0.0, 0.15, 0.3]}}\n"
            )
        } else {
            format!("{{\"id\": {id}, \"kind\": \"classify\", \"pixels\": [{pixels}]}}\n")
        };
        frames.push((id, frame));
    }
    frames
}

fn send(addr: SocketAddr, frame: &str) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream.write_all(frame.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    serde_json::from_str(&line).unwrap()
}

/// Boots a server over clones of `scorer`, fires the whole request mix
/// concurrently, and returns the responses keyed by request id.
fn serve_once(
    scorer: &SnnScorer,
    max_batch: usize,
    replicas: usize,
    threads: usize,
) -> BTreeMap<u64, ResponseBits> {
    tensor::parallel::set_max_threads(threads);
    let options = ServeOptions {
        addr: "127.0.0.1:0".into(),
        max_batch,
        // A long linger forces real coalescing whenever max_batch allows it.
        max_wait: Duration::from_millis(20),
        queue_capacity: 64,
    };
    let server = Server::bind(&options, scorer.replicas(replicas)).unwrap();
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    let clients: Vec<_> = request_frames()
        .into_iter()
        .map(|(id, frame)| std::thread::spawn(move || (id, send(addr, &frame))))
        .collect();
    let mut responses = BTreeMap::new();
    for client in clients {
        let (id, response) = client.join().unwrap();
        assert!(response.ok, "request {id} failed: {response:?}");
        assert_eq!(response.id, id, "response correlated to the wrong request");
        responses.insert(id, ResponseBits::of(&response));
    }
    send(addr, "{\"kind\": \"shutdown\"}\n");
    server_thread.join().unwrap();
    responses
}

#[test]
fn scores_are_bitwise_identical_across_batching_replicas_and_threads() {
    // One deterministic training run; every server serves clones of it.
    let config = presets::tiny();
    let data = pipeline::prepare_data(&config);
    let trained = pipeline::train_snn(&config, &data, snn::StructuralParams::new(1.0, 4));
    let scorer = SnnScorer::new(config, trained.classifier);

    // Reference: the degenerate service (no batching, one replica, serial
    // kernels). Everything else must reproduce its bits exactly.
    let reference = serve_once(&scorer, 1, 1, 1);
    assert_eq!(reference.len(), 12);
    for (id, bits) in &reference {
        if id % 3 == 2 {
            let points = bits.robustness.as_ref().unwrap();
            assert_eq!(points.len(), 3, "request {id} certify sweep length");
        } else {
            assert_eq!(bits.scores.as_ref().unwrap().len(), 10);
        }
    }

    for max_batch in [1usize, 4, 16] {
        for replicas in [1usize, 2] {
            for threads in [1usize, 2, 4] {
                if (max_batch, replicas, threads) == (1, 1, 1) {
                    continue;
                }
                let got = serve_once(&scorer, max_batch, replicas, threads);
                assert_eq!(
                    got, reference,
                    "bits diverged at max_batch={max_batch} replicas={replicas} threads={threads}"
                );
            }
        }
    }
}
