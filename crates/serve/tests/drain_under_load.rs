//! Drain-under-load: shutdown with requests still queued must answer
//! every admitted request and refuse the rest with the typed
//! `shutting_down` error — no request may simply vanish.
//!
//! Producers hammer the queue from several threads while the main thread
//! triggers the drain mid-stream; a slow scorer keeps the queue non-empty
//! at shutdown so the drain path actually has work to finish.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use serve::{
    spawn_workers, BatchQueue, ClassifyOutcome, RobustnessPoint, ScoreJob, Scorer, ServeError,
};

/// Slow deterministic stub: the per-batch sleep is what backs the queue up.
struct SlowStub;

impl Scorer for SlowStub {
    fn input_len(&self) -> usize {
        2
    }
    fn num_classes(&self) -> usize {
        2
    }
    fn classify_batch(&mut self, inputs: &[&[f32]]) -> Vec<ClassifyOutcome> {
        std::thread::sleep(Duration::from_millis(5));
        inputs
            .iter()
            .map(|_| ClassifyOutcome {
                label: 1,
                confidence: 1.0,
                scores: vec![0.0, 1.0],
            })
            .collect()
    }
    fn certify(&mut self, _: &[f32], _: &ClassifyOutcome, _: &[f32]) -> Vec<RobustnessPoint> {
        Vec::new()
    }
}

#[test]
fn shutdown_with_queued_requests_answers_or_refuses_every_one() {
    const PRODUCERS: u64 = 4;
    const BURSTS: u64 = 5;
    const BURST: u64 = 10;
    const PER_PRODUCER: u64 = BURSTS * BURST;

    obs::enable(false);
    obs::reset();
    let queue = Arc::new(BatchQueue::new(256));
    let workers = spawn_workers(
        &queue,
        vec![Box::new(SlowStub), Box::new(SlowStub)],
        4,
        Duration::from_millis(1),
    );

    let answered = Arc::new(AtomicU64::new(0));
    let refused = Arc::new(AtomicU64::new(0));
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let queue = Arc::clone(&queue);
            let answered = Arc::clone(&answered);
            let refused = Arc::clone(&refused);
            std::thread::spawn(move || {
                // Submit in bursts so the four producers stack a real
                // backlog (one-at-a-time submission caps the depth at
                // PRODUCERS and the main thread's depth trigger never
                // fires); reap each burst's replies before the next.
                for burst in 0..BURSTS {
                    let mut pending = Vec::new();
                    for i in 0..BURST {
                        let (reply, rx) = mpsc::channel();
                        let submitted = queue.submit(ScoreJob {
                            id: p * PER_PRODUCER + burst * BURST + i,
                            pixels: vec![0.5, 0.5],
                            epsilons: Vec::new(),
                            reply,
                            accepted_at: Instant::now(),
                        });
                        match submitted {
                            Ok(()) => pending.push(rx),
                            Err(ServeError::ShuttingDown) | Err(ServeError::Overloaded { .. }) => {
                                refused.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => panic!("untyped refusal: {other:?}"),
                        }
                    }
                    for rx in pending {
                        // Admitted ⇒ the drain contract guarantees an
                        // answer; a drop would park this recv forever.
                        let resp = rx
                            .recv_timeout(Duration::from_secs(30))
                            .expect("admitted request was dropped by the drain");
                        assert!(resp.ok, "stub answers never fail: {resp:?}");
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    // Let the producers build a backlog, then drain mid-stream. The
    // deadline turns a broken-backpressure bug into a loud failure
    // instead of a hung CI job.
    let deadline = Instant::now() + Duration::from_secs(10);
    while queue.depth() < 8 {
        assert!(
            Instant::now() < deadline,
            "the producer bursts never backed the queue up"
        );
        std::thread::yield_now();
    }
    queue.shutdown();

    for p in producers {
        p.join().unwrap();
    }
    let served: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();

    let answered = answered.load(Ordering::Relaxed);
    let refused = refused.load(Ordering::Relaxed);
    assert_eq!(
        answered + refused,
        PRODUCERS * PER_PRODUCER,
        "every request must be answered or typed-refused"
    );
    assert!(answered >= 1, "the pre-drain backlog must have been served");
    assert!(refused >= 1, "post-drain submissions must be refused");
    assert_eq!(served, answered, "worker tally must match client tally");

    // Regression for the batch-size metric's move to the worker side: the
    // histogram must still be recorded (by the consumer), and the answered
    // counter must agree with the client-side tally.
    let snap = obs::snapshot();
    let batches = snap
        .histogram("serve/batch_size")
        .expect("workers must record the batch-size histogram")
        .total();
    assert!(batches >= 1, "at least one batch was pulled");
    assert_eq!(snap.counter("serve/answered"), answered);
    obs::disable();
}
