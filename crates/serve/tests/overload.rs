//! Backpressure: at queue capacity the server refuses with a typed
//! `overloaded` response and *stays serving* — overload is load shedding,
//! not a crash.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use serve::{ClassifyOutcome, Response, RobustnessPoint, Scorer, ServeOptions, Server};

/// A deliberately slow model so concurrent clients pile up on the queue.
struct SlowScorer {
    delay: Duration,
    calls: Arc<AtomicU64>,
}

impl Scorer for SlowScorer {
    fn input_len(&self) -> usize {
        2
    }
    fn num_classes(&self) -> usize {
        2
    }
    fn classify_batch(&mut self, inputs: &[&[f32]]) -> Vec<ClassifyOutcome> {
        std::thread::sleep(self.delay);
        self.calls.fetch_add(1, Ordering::Relaxed);
        inputs
            .iter()
            .map(|_| ClassifyOutcome {
                label: 0,
                confidence: 1.0,
                scores: vec![1.0, 0.0],
            })
            .collect()
    }
    fn certify(&mut self, _: &[f32], _: &ClassifyOutcome, _: &[f32]) -> Vec<RobustnessPoint> {
        Vec::new()
    }
}

fn send_classify(addr: std::net::SocketAddr, id: u64) -> Response {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let frame = format!("{{\"id\": {id}, \"kind\": \"classify\", \"pixels\": [0.5, 0.5]}}\n");
    stream.write_all(frame.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    serde_json::from_str(&line).unwrap()
}

#[test]
fn queue_capacity_sheds_load_with_typed_responses_and_keeps_serving() {
    let calls = Arc::new(AtomicU64::new(0));
    let options = ServeOptions {
        addr: "127.0.0.1:0".into(),
        max_batch: 1,
        max_wait: Duration::from_millis(0),
        queue_capacity: 1,
    };
    let server = Server::bind(
        &options,
        vec![Box::new(SlowScorer {
            delay: Duration::from_millis(300),
            calls: Arc::clone(&calls),
        })],
    )
    .unwrap();
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    // Burst: 6 concurrent requests against a capacity-1 queue served at
    // ~300ms each. At most a couple can be in flight; the rest must be
    // refused as `overloaded`.
    let clients: Vec<_> = (0..6)
        .map(|id| std::thread::spawn(move || send_classify(addr, id)))
        .collect();
    let responses: Vec<Response> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    let overloaded = responses
        .iter()
        .filter(|r| !r.ok && r.error.as_ref().map(|e| e.kind.as_str()) == Some("overloaded"))
        .count();
    let succeeded = responses.iter().filter(|r| r.ok).count();
    assert!(overloaded >= 1, "responses: {responses:?}");
    assert!(succeeded >= 1, "responses: {responses:?}");
    assert_eq!(overloaded + succeeded, 6, "responses: {responses:?}");

    // The server survived the burst: a later request succeeds normally.
    let after = send_classify(addr, 99);
    assert!(
        after.ok,
        "server must keep serving after overload: {after:?}"
    );

    // Graceful shutdown still drains.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"{\"kind\": \"shutdown\"}\n").unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    let summary = server_thread.join().unwrap();
    assert_eq!(summary.answered as usize, succeeded + 1);
    assert!(calls.load(Ordering::Relaxed) >= 1);
}
