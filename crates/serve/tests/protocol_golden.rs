//! Protocol golden tests over a real loopback socket.
//!
//! Contract: whatever bytes a client sends, the server answers with a
//! typed JSON error or drops the connection — it never panics and never
//! stops serving other frames on the same connection.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use serve::{
    ClassifyOutcome, Response, RobustnessPoint, Scorer, ServeOptions, Server, MAX_FRAME_BYTES,
};

/// Deterministic stub model: 4 inputs, 4 classes, label = argmax pixel.
struct Stub;

impl Scorer for Stub {
    fn input_len(&self) -> usize {
        4
    }
    fn num_classes(&self) -> usize {
        4
    }
    fn classify_batch(&mut self, inputs: &[&[f32]]) -> Vec<ClassifyOutcome> {
        inputs
            .iter()
            .map(|px| {
                let label = px
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i as u32)
                    .unwrap();
                ClassifyOutcome {
                    label,
                    confidence: 1.0,
                    scores: px.to_vec(),
                }
            })
            .collect()
    }
    fn certify(
        &mut self,
        _pixels: &[f32],
        clean: &ClassifyOutcome,
        epsilons: &[f32],
    ) -> Vec<RobustnessPoint> {
        epsilons
            .iter()
            .map(|&eps| RobustnessPoint {
                eps,
                robust: eps < 0.5,
                adv_label: clean.label,
                adv_confidence: clean.confidence,
            })
            .collect()
    }
}

struct TestServer {
    addr: std::net::SocketAddr,
    thread: std::thread::JoinHandle<serve::ServeSummary>,
}

fn boot() -> TestServer {
    let options = ServeOptions {
        addr: "127.0.0.1:0".into(),
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        queue_capacity: 16,
    };
    let server = Server::bind(&options, vec![Box::new(Stub)]).unwrap();
    let addr = server.local_addr();
    let thread = std::thread::spawn(move || server.run());
    TestServer { addr, thread }
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, frame: &[u8]) -> Response {
    stream.write_all(frame).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    serde_json::from_str(&line).unwrap()
}

fn error_kind(resp: &Response) -> String {
    assert!(!resp.ok, "expected an error response, got {resp:?}");
    resp.error.as_ref().expect("error body").kind.clone()
}

#[test]
fn golden_frames_get_typed_answers_and_the_connection_survives() {
    let ts = boot();
    let (mut stream, mut reader) = connect(ts.addr);
    let rt =
        |s: &mut TcpStream, r: &mut BufReader<TcpStream>, f: &str| roundtrip(s, r, f.as_bytes());

    // Well-formed frames.
    let pong = rt(&mut stream, &mut reader, "{\"id\": 1, \"kind\": \"ping\"}");
    assert!(pong.ok);
    assert_eq!(pong.id, 1);

    let info = rt(&mut stream, &mut reader, "{\"id\": 2, \"kind\": \"info\"}");
    let body = info.info.expect("info body");
    assert_eq!(body.input_len, 4);
    assert_eq!(body.classes, 4);
    assert_eq!(body.replicas, 1);

    let classify = rt(
        &mut stream,
        &mut reader,
        "{\"id\": 3, \"kind\": \"classify\", \"pixels\": [0.0, 0.0, 1.0, 0.0]}",
    );
    assert!(classify.ok);
    assert_eq!(classify.label, Some(2));
    assert_eq!(classify.scores.as_deref(), Some(&[0.0, 0.0, 1.0, 0.0][..]));

    let certify = rt(
        &mut stream,
        &mut reader,
        "{\"id\": 4, \"kind\": \"certify\", \"pixels\": [1.0, 0.0, 0.0, 0.0], \
         \"epsilons\": [0.1, 0.9]}",
    );
    assert!(certify.ok);
    let profile = certify.robustness.expect("robustness profile");
    assert_eq!(profile.len(), 2);
    assert!(profile[0].robust && !profile[1].robust);

    // Malformed frames: typed errors, never a dropped connection.
    let cases: &[(&str, &str)] = &[
        ("{\"id\": 5, \"kind\": \"clas", "bad_request"), // truncated JSON
        ("\u{1}\u{2}binary garbage\u{3}", "bad_request"),
        ("[1, 2, 3]", "bad_request"), // valid JSON, wrong shape
        ("{\"id\": 6, \"kind\": \"warp\"}", "bad_request"), // unknown kind
        ("{\"id\": 7, \"kind\": \"classify\"}", "bad_request"), // pixels missing
        (
            "{\"id\": 8, \"kind\": \"classify\", \"pixels\": [0.5]}",
            "wrong_input_len",
        ),
        (
            "{\"id\": 9, \"kind\": \"certify\", \"pixels\": [0.0, 0.0, 0.0, 0.0]}",
            "bad_request", // epsilons missing
        ),
        (
            "{\"id\": 10, \"kind\": \"certify\", \"pixels\": [0.0, 0.0, 0.0, 0.0], \
             \"epsilons\": [0.1, -3.0]}",
            "bad_epsilon",
        ),
    ];
    for (frame, want_kind) in cases {
        let resp = rt(&mut stream, &mut reader, frame);
        assert_eq!(&error_kind(&resp), want_kind, "frame: {frame}");
    }

    // An oversized frame is refused and framing resynchronises.
    let mut big = Vec::with_capacity(MAX_FRAME_BYTES + 64);
    big.extend_from_slice(b"{\"kind\": \"classify\", \"pixels\": [");
    while big.len() <= MAX_FRAME_BYTES {
        big.extend_from_slice(b"0.0, ");
    }
    big.extend_from_slice(b"0.0]}");
    let resp = roundtrip(&mut stream, &mut reader, &big);
    assert_eq!(error_kind(&resp), "oversized");

    // The same connection still serves real work afterwards.
    let again = rt(
        &mut stream,
        &mut reader,
        "{\"id\": 11, \"kind\": \"classify\", \"pixels\": [0.0, 1.0, 0.0, 0.0]}",
    );
    assert!(again.ok);
    assert_eq!(again.label, Some(1));

    let bye = rt(
        &mut stream,
        &mut reader,
        "{\"id\": 12, \"kind\": \"shutdown\"}",
    );
    assert!(bye.ok);
    let summary = ts.thread.join().unwrap();
    assert!(summary.answered >= 3, "summary: {summary:?}");
}

#[test]
fn ids_correlate_across_interleaved_requests_on_two_connections() {
    let ts = boot();
    let (mut a, mut ra) = connect(ts.addr);
    let (mut b, mut rb) = connect(ts.addr);
    let ca = roundtrip(
        &mut a,
        &mut ra,
        b"{\"id\": 100, \"kind\": \"classify\", \"pixels\": [1.0, 0.0, 0.0, 0.0]}",
    );
    let cb = roundtrip(
        &mut b,
        &mut rb,
        b"{\"id\": 200, \"kind\": \"classify\", \"pixels\": [0.0, 0.0, 0.0, 1.0]}",
    );
    assert_eq!((ca.id, ca.label), (100, Some(0)));
    assert_eq!((cb.id, cb.label), (200, Some(3)));
    let _ = roundtrip(&mut a, &mut ra, b"{\"kind\": \"shutdown\"}");
    ts.thread.join().unwrap();
}
