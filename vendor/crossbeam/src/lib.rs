//! Offline stand-in for the crates.io `crossbeam` crate.
//!
//! Only [`scope`] is provided — the single entry point the workspace uses —
//! implemented on top of `std::thread::scope` (stable since Rust 1.63, which
//! postdates crossbeam's scoped-thread API). Matching crossbeam's contract,
//! a panic on any worker thread is reported as `Err` from [`scope`] instead
//! of unwinding through the caller.

use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod thread {
    /// A scope handle: spawned closures receive `&Scope` so workers can
    /// spawn further workers, exactly like `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        pub(crate) inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker thread.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }
}

/// Creates a scope for spawning threads that may borrow from the caller's
/// stack. All spawned threads are joined before `scope` returns.
///
/// # Errors
///
/// Returns `Err` with the panic payload if the closure or any spawned
/// thread panicked.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&thread::Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&thread::Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_run_and_join_before_scope_returns() {
        let counter = AtomicUsize::new(0);
        let result = super::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            42
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawns_through_the_scope_handle() {
        let counter = AtomicUsize::new(0);
        super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn worker_panic_is_reported_as_err() {
        let result = super::scope(|scope| {
            scope.spawn(|_| panic!("worker down"));
        });
        assert!(result.is_err());
    }
}
