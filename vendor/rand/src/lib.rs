//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace ships this minimal, dependency-free implementation of the
//! `rand` 0.8 API surface it actually uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — every experiment is
//!   seeded explicitly, so only the `u64`-seed constructor is provided.
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] for `f32`/`f64` and
//!   the primitive integer types.
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Streams are
//! deterministic in the seed but are **not** bit-compatible with the real
//! `rand` crate; nothing in the workspace depends on the exact stream, only
//! on seed-determinism.

/// A random number generator: the single low-level method plus the typed
/// convenience samplers the workspace uses.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A sample from the "standard" distribution of `T`: uniform `[0, 1)`
    /// for floats, uniform over all values for integers and `bool`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from an explicit `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 resolution.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over a range. The blanket [`SampleRange`]
/// impls below tie a range's element type to the sampled type, which is
/// what lets `gen_range(-1.0..1.0)` infer its float width from context,
/// exactly as with the real rand crate.
pub trait SampleUniform: Sized {
    /// Uniform sample from `lo..hi`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `lo..=hi`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range {lo}..{hi}");
                lo + (hi - lo) * <$t as StandardSample>::sample_standard(rng)
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range {lo}..={hi}");
                lo + (hi - lo) * <$t as StandardSample>::sample_standard(rng)
            }
        }
    )*};
}
uniform_float!(f32, f64);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                sample_int(rng, lo as i128, hi as i128) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                sample_int(rng, lo as i128, hi as i128 + 1) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn sample_int<R: Rng + ?Sized>(rng: &mut R, lo: i128, hi_excl: i128) -> i128 {
    assert!(lo < hi_excl, "empty integer range {lo}..{hi_excl}");
    let span = (hi_excl - lo) as u128;
    lo + (rng.next_u64() as u128 % span) as i128
}

fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the seed with SplitMix64, as the xoshiro authors
            // recommend for seeding from small state.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = r.gen_range(-0.25f32..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let u = r.gen_range(3usize..9);
            assert!((3..9).contains(&u));
            let i = r.gen_range(-2isize..=2);
            assert!((-2..=2).contains(&i));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval_and_vary() {
        let mut r = StdRng::seed_from_u64(2);
        let xs: Vec<f32> = (0..100).map(|_| r.gen::<f32>()).collect();
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        assert!(xs.iter().any(|&x| x != xs[0]));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..32).collect();
        let mut r = StdRng::seed_from_u64(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "32 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(4);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
