//! Offline stand-in for the crates.io `serde_json` crate.
//!
//! Serializes the vendored [`serde::Value`] tree to JSON text and parses
//! JSON text back, exposing the three entry points the workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`].

use serde::{Deserialize, Serialize, Value};

/// A JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the value model used here; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as JSON indented with two spaces.
///
/// # Errors
///
/// Infallible for the value model used here; the `Result` mirrors the real
/// serde_json signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] if the text is not valid JSON or does not describe
/// a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------- printing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_seq_items(out, items, ('[', ']'), indent, depth, |out, item, d| {
                write_value(out, item, indent, d);
            })
        }
        Value::Map(entries) => {
            write_seq_items(out, entries, ('{', '}'), indent, depth, |out, (k, v), d| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d);
            });
        }
    }
}

fn write_seq_items<T>(
    out: &mut String,
    items: &[T],
    brackets: (char, char),
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, &T, usize),
) {
    out.push(brackets.0);
    if items.is_empty() {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(brackets.1);
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let text = format!("{f}");
        out.push_str(&text);
        // serde_json always distinguishes floats from integers on output.
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Real serde_json rejects non-finite floats; emitting null matches
        // its `Value` printing behaviour and keeps serialization total.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.consume(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.consume(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => out.push(self.parse_unicode_escape()?),
                        _ => return Err(self.error("unknown escape sequence")),
                    }
                }
                Some(_) => {
                    // Copy one whole UTF-8 character (the input is a &str,
                    // so slicing at a char boundary is always possible).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, Error> {
        let code = self.parse_hex4()?;
        // Surrogate pairs encode characters outside the BMP.
        if (0xD800..0xDC00).contains(&code) {
            if !self.consume_literal("\\u") {
                return Err(self.error("unpaired surrogate in \\u escape"));
            }
            let low = self.parse_hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(self.error("invalid low surrogate in \\u escape"));
            }
            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            char::from_u32(combined).ok_or_else(|| self.error("invalid \\u escape"))
        } else {
            char::from_u32(code).ok_or_else(|| self.error("invalid \\u escape"))
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.error("expected 4 hex digits in \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.error("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.error("invalid integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Sample {
        label: String,
        weight: f32,
        count: usize,
        #[serde(default)]
        note: Option<String>,
        #[serde(default)]
        retries: usize,
        points: Vec<(f32, f32)>,
        mode: Mode,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Mode {
        Fast,
        Tuned { rate: f32, warmup: usize },
    }

    fn sample() -> Sample {
        Sample {
            label: "run \"A\"\n".to_string(),
            weight: 0.25,
            count: 3,
            note: None,
            retries: 0,
            points: vec![(0.0, 1.0), (-2.5, 4.0)],
            mode: Mode::Tuned {
                rate: 0.1,
                warmup: 5,
            },
        }
    }

    #[test]
    fn derived_struct_round_trips_compact_and_pretty() {
        let original = sample();
        let compact: Sample = from_str(&to_string(&original).unwrap()).unwrap();
        let pretty: Sample = from_str(&to_string_pretty(&original).unwrap()).unwrap();
        assert_eq!(compact, original);
        assert_eq!(pretty, original);
    }

    #[test]
    fn external_enum_tagging_matches_serde_convention() {
        assert_eq!(to_string(&Mode::Fast).unwrap(), "\"Fast\"");
        let tuned = to_string(&Mode::Tuned {
            rate: 1.0,
            warmup: 2,
        })
        .unwrap();
        assert_eq!(tuned, "{\"Tuned\":{\"rate\":1.0,\"warmup\":2}}");
        assert_eq!(
            from_str::<Mode>(&tuned).unwrap(),
            Mode::Tuned {
                rate: 1.0,
                warmup: 2
            }
        );
    }

    #[test]
    fn missing_defaulted_and_option_fields_fall_back() {
        let json = r#"{
            "label": "x",
            "weight": 1,
            "count": 2,
            "points": [],
            "mode": "Fast"
        }"#;
        let parsed: Sample = from_str(json).unwrap();
        assert_eq!(parsed.note, None);
        assert_eq!(parsed.retries, 0);
        assert_eq!(parsed.weight, 1.0, "integer literal must coerce to float");
    }

    #[test]
    fn missing_required_field_is_an_error() {
        let json = r#"{"label": "x"}"#;
        let err = from_str::<Sample>(json).unwrap_err();
        assert!(err.to_string().contains("weight"), "got: {err}");
    }

    #[test]
    fn unknown_variant_is_an_error() {
        assert!(from_str::<Mode>("\"Slow\"").is_err());
        assert!(from_str::<Mode>("{\"Slow\":{}}").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let text = "tab\t quote\" back\\ newline\n unicode \u{1F600} nul\u{0001}";
        let json = to_string(&text.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, text);
        // Surrogate-pair escapes from other writers parse too.
        let emoji: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(emoji, "\u{1F600}");
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(from_str::<Vec<f32>>("[1, 2,]").is_err());
        assert!(from_str::<Vec<f32>>("[1 2]").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<bool>("true false").is_err());
    }

    #[test]
    fn pretty_output_is_indented_json() {
        let json = to_string_pretty(&vec![1u64, 2]).unwrap();
        assert_eq!(json, "[\n  1,\n  2\n]");
    }
}
