//! Offline stand-in for the crates.io `serde_derive` crate.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored value-tree `serde` without `syn`/`quote` (unavailable offline):
//! the item is parsed directly from its token stream and the impls are
//! emitted as source text.
//!
//! Supported shapes — exactly what the workspace uses:
//!
//! * non-generic structs with named fields;
//! * non-generic enums whose variants are unit or struct-like
//!   (externally tagged, matching real serde's JSON representation);
//! * `#[serde(default)]` on struct fields;
//! * missing `Option<T>` fields deserialize as `None`, as with real serde.
//!
//! Anything else (generics, tuple structs/variants, other serde attributes)
//! panics at expansion time with an explicit message rather than silently
//! producing wrong code.

extern crate proc_macro;

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

struct Field {
    name: String,
    /// `#[serde(default)]` was present on the field.
    default: bool,
    /// The field's type path ends in `Option`, so a missing key means `None`.
    is_option: bool,
}

struct Variant {
    name: String,
    /// `None` for unit variants, field list for struct variants.
    fields: Option<Vec<Field>>,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.body {
        Body::Struct(fields) => serialize_struct(&item.name, fields),
        Body::Enum(variants) => serialize_enum(&item.name, variants),
    };
    code.parse()
        .expect("generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.body {
        Body::Struct(fields) => deserialize_struct(&item.name, fields),
        Body::Enum(variants) => deserialize_enum(&item.name, variants),
    };
    code.parse()
        .expect("generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    skip_attributes(&mut it);
    skip_visibility(&mut it);
    let kind = expect_ident(&mut it, "`struct` or `enum`");
    let name = expect_ident(&mut it, "the type name");
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("offline serde derive does not support generic type `{name}`");
        }
    }
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "offline serde derive supports only brace-bodied structs and enums \
             (on `{name}`, found {other:?})"
        ),
    };
    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_fields(&name, body)),
        "enum" => Body::Enum(parse_variants(&name, body)),
        other => panic!("offline serde derive cannot handle `{other} {name}`"),
    };
    Item { name, body }
}

fn parse_fields(owner: &str, body: TokenStream) -> Vec<Field> {
    let mut it = body.into_iter().peekable();
    let mut fields = Vec::new();
    while it.peek().is_some() {
        let default = skip_attributes(&mut it);
        skip_visibility(&mut it);
        let name = expect_ident(&mut it, "a field name (named fields only)");
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{owner}.{name}`, found {other:?}"),
        }
        // Skip the type, noting whether its outermost path ends in `Option`.
        // Commas inside angle brackets belong to the type, not the field list.
        let mut angle_depth = 0i32;
        let mut path_tail = String::new();
        loop {
            match it.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    it.next();
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Ident(i)) if angle_depth == 0 => path_tail = i.to_string(),
                _ => {}
            }
            it.next();
        }
        let is_option = path_tail == "Option";
        fields.push(Field {
            name,
            default,
            is_option,
        });
    }
    fields
}

fn parse_variants(owner: &str, body: TokenStream) -> Vec<Variant> {
    let mut it = body.into_iter().peekable();
    let mut variants = Vec::new();
    while it.peek().is_some() {
        skip_attributes(&mut it);
        let name = expect_ident(&mut it, "a variant name");
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                it.next();
                Some(parse_fields(&format!("{owner}::{name}"), stream))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("offline serde derive does not support tuple variant `{owner}::{name}`")
            }
            _ => None,
        };
        match it.next() {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!(
                "unexpected token after variant `{owner}::{name}`: {other:?} \
                 (discriminants are not supported)"
            ),
        }
        variants.push(Variant { name, fields });
    }
    variants
}

/// Consumes any leading `#[...]` attributes. Returns true if one of them was
/// `#[serde(default)]`; panics on any other `#[serde(...)]` content so
/// unsupported attributes fail loudly instead of being ignored.
fn skip_attributes(it: &mut TokenIter) -> bool {
    let mut default = false;
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        if let Some(serde_args) = serde_attribute_args(g.stream()) {
                            match parse_serde_args(serde_args) {
                                SerdeArg::Default => default = true,
                                SerdeArg::Unsupported(what) => panic!(
                                    "offline serde derive supports only \
                                     #[serde(default)], found #[serde({what})]"
                                ),
                            }
                        }
                    }
                    other => panic!("malformed attribute: {other:?}"),
                }
            }
            _ => return default,
        }
    }
}

/// If the bracket content is `serde(...)`, returns the inner arguments.
fn serde_attribute_args(content: TokenStream) -> Option<TokenStream> {
    let mut it = content.into_iter();
    match (it.next(), it.next(), it.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)), None)
            if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            Some(args.stream())
        }
        _ => None,
    }
}

enum SerdeArg {
    Default,
    Unsupported(String),
}

fn parse_serde_args(args: TokenStream) -> SerdeArg {
    let tokens: Vec<TokenTree> = args.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(i)] if i.to_string() == "default" => SerdeArg::Default,
        other => SerdeArg::Unsupported(
            other
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" "),
        ),
    }
}

fn skip_visibility(it: &mut TokenIter) {
    if matches!(it.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        it.next();
        if matches!(
            it.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            it.next();
        }
    }
}

fn expect_ident(it: &mut TokenIter, what: &str) -> String {
    match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("offline serde derive expected {what}, found {other:?}"),
    }
}

// ---------------------------------------------------------------- codegen

fn serialize_struct(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields {
        let n = &f.name;
        pushes.push_str(&format!(
            "entries.push((::std::string::String::from(\"{n}\"), \
             ::serde::Serialize::to_value(&self.{n})));"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\
             fn to_value(&self) -> ::serde::Value {{\
                 let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\
                 {pushes}\
                 ::serde::Value::Map(entries)\
             }}\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    assert!(
        !variants.is_empty(),
        "offline serde derive cannot handle empty enum `{name}`"
    );
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            None => arms.push_str(&format!(
                "{name}::{vname} => \
                 ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
            )),
            Some(fields) => {
                let binds = fields
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ");
                let mut pushes = String::new();
                for f in fields {
                    let n = &f.name;
                    pushes.push_str(&format!(
                        "entries.push((::std::string::String::from(\"{n}\"), \
                         ::serde::Serialize::to_value({n})));"
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vname} {{ {binds} }} => {{\
                         let mut entries: \
                             ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\
                         {pushes}\
                         ::serde::Value::Map(::std::vec::Vec::from([(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Map(entries))]))\
                     }},"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\
             fn to_value(&self) -> ::serde::Value {{\
                 match self {{ {arms} }}\
             }}\
         }}"
    )
}

/// The initializer expression for one named field, reading from the map
/// value reachable through `{source}` (e.g. `v` or `inner`).
fn field_initializer(owner: &str, f: &Field, source: &str) -> String {
    let n = &f.name;
    let missing = if f.default {
        "::std::default::Default::default()".to_string()
    } else if f.is_option {
        "::std::option::Option::None".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::custom(\
                 \"missing field `{n}` in {owner}\"))"
        )
    };
    format!(
        "{n}: match {source}.get(\"{n}\") {{\
             ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?,\
             ::std::option::Option::None => {missing},\
         }},"
    )
}

fn deserialize_struct(name: &str, fields: &[Field]) -> String {
    let inits: String = fields
        .iter()
        .map(|f| field_initializer(name, f, "v"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\
             fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\
                 match v {{\
                     ::serde::Value::Map(_) => {{}}\
                     other => return ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"expected map for {name}, got {{other:?}}\"))),\
                 }}\
                 ::std::result::Result::Ok({name} {{ {inits} }})\
             }}\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut struct_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            None => unit_arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
            )),
            Some(fields) => {
                let inits: String = fields
                    .iter()
                    .map(|f| field_initializer(&format!("{name}::{vname}"), f, "inner"))
                    .collect();
                struct_arms.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {inits} }}),"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\
             fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\
                 match v {{\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\
                         {unit_arms}\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\
                                 \"unknown unit variant `{{other}}` for {name}\"))),\
                     }},\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\
                         let (tag, inner) = &entries[0];\
                         match tag.as_str() {{\
                             {struct_arms}\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\
                                     \"unknown variant `{{other}}` for {name}\"))),\
                         }}\
                     }}\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\
                             \"expected a {name} variant, got {{other:?}}\"))),\
                 }}\
             }}\
         }}"
    )
}
