//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Implements the harness surface the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_function`/`sample_size`/`finish`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock timer instead of criterion's statistical machinery. Each
//! benchmark warms up briefly, then reports the mean, minimum, and maximum
//! iteration time over the sampled runs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target time spent measuring each benchmark (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(1500);
const WARMUP_BUDGET: Duration = Duration::from_millis(300);

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 100,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark. The closure receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(name.as_ref(), &bencher.samples);
        self
    }

    /// Ends the group. Reporting happens per-benchmark, so this is a no-op
    /// kept for API compatibility.
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure to time the measured routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`: a short warm-up, then up to
    /// `sample_size` timed samples within a fixed wall-clock budget.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
            warmup_iters += 1;
        }
        // Batch iterations so per-sample timing overhead stays negligible
        // for fast routines, while slow routines get one iteration a sample.
        let per_sample = (warmup_iters / self.sample_size.max(1) as u64).max(1);

        let measure_start = Instant::now();
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
            if measure_start.elapsed() > MEASURE_BUDGET {
                break;
            }
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("  {name}: no samples collected (Bencher::iter not called?)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "  {name}: mean {} (min {}, max {}, {} samples)",
        fmt_duration(mean),
        fmt_duration(*min),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group
            .sample_size(10)
            .bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(5)), "5.00 s");
    }
}
