//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: numeric range
//! strategies, `proptest::collection::vec` with a fixed size,
//! `ProptestConfig::with_cases`, and the `proptest!`/`prop_assert!`/
//! `prop_assert_eq!` macros. No shrinking — a failing case reports its
//! inputs via the assertion message instead of minimizing them.
//!
//! Case generation is seeded from a hash of the test-function name, so runs
//! are deterministic and reproducible without a persistence file.

/// The deterministic generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            // Avoid the all-zero fixed point of the mixer.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every drawn value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range {self:?}");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range {lo}..={hi}");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range {self:?}");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty strategy range {lo}..={hi}");
                let span = (hi - lo + 1) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s of a fixed length.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `proptest::collection::vec(element, len)` with a fixed length.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len)
                .map(|_| self.element.sample_value(rng))
                .collect()
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property, carrying the assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic seed for a test, derived from its name (FNV-1a).
pub fn seed_for(test_name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        @cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::from_seed($crate::seed_for(stringify!($name)));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::Strategy::sample_value(&$strategy, &mut rng);
                    )+
                    let property = || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    if let ::std::result::Result::Err(e) = property() {
                        panic!(
                            "property `{}` failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// `assert!` that reports through proptest instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through proptest instead of panicking directly.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_deterministic_and_name_sensitive() {
        assert_eq!(super::seed_for("a"), super::seed_for("a"));
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
    }

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = super::TestRng::from_seed(1);
        for _ in 0..1000 {
            let f = (0.0f32..=1.0).sample_value(&mut rng);
            assert!((0.0..=1.0).contains(&f));
            let u = (0usize..4).sample_value(&mut rng);
            assert!(u < 4);
            let v = crate::collection::vec(-2.0f32..2.0, 7).sample_value(&mut rng);
            assert_eq!(v.len(), 7);
            assert!(v.iter().all(|x| (-2.0..2.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_passing_tests(x in 0.0f64..1.0, n in 1usize..5) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(n.min(4), n, "n was {}", n);
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        // Reuse the macro machinery by hand to observe the failure path.
        let result = (|| -> Result<(), TestCaseError> {
            prop_assert!(1 + 1 == 3, "math broke");
            Ok(())
        })();
        assert_eq!(result.unwrap_err().to_string(), "math broke");
    }
}
