//! Offline stand-in for the crates.io `serde` crate.
//!
//! The real serde is a zero-copy visitor framework; this stand-in is a much
//! simpler *value-tree* framework that covers what the workspace needs:
//!
//! * [`Serialize`] converts a value into a [`Value`] tree.
//! * [`Deserialize`] reconstructs a value from a [`Value`] tree.
//! * `#[derive(Serialize, Deserialize)]` (re-exported from `serde_derive`)
//!   for non-generic structs with named fields and enums with unit or
//!   struct variants, honouring `#[serde(default)]` on fields.
//!
//! Enum representation matches serde's externally-tagged JSON convention:
//! unit variants serialize as `"Name"`, struct variants as
//! `{"Name": {...}}`, so JSON written by the real serde round-trips.

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (the JSON data model).
///
/// Maps preserve insertion order so serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entry for `key` if this is a map containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// # Errors
    ///
    /// Returns an [`Error`] if the tree does not describe a `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod de {
    //! Mirror of `serde::de` for the one bound the workspace imports.

    /// Marker for types deserializable without borrowing from the input —
    /// every [`Deserialize`](crate::Deserialize) in this value-tree model.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// A (de)serialization error with a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::custom(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u).map_err(|_| {
                        Error::custom(format!("integer {u} out of range for i64"))
                    })?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::custom(format!("expected 3-tuple, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        let none: Option<String> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<String>::from_value(&Value::Null).unwrap(), None);
        let some = Some("x".to_string());
        assert_eq!(
            Option::<String>::from_value(&some.to_value()).unwrap(),
            some
        );
    }

    #[test]
    fn numeric_cross_coercion() {
        // A float field written by a hand-edited config as `1` must load.
        assert_eq!(f32::from_value(&Value::Int(1)).unwrap(), 1.0);
        assert_eq!(f32::from_value(&Value::UInt(2)).unwrap(), 2.0);
        assert_eq!(usize::from_value(&Value::Int(3)).unwrap(), 3);
        assert!(usize::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }

    #[test]
    fn tuple_and_vec_round_trip() {
        let v = vec![(1.0f32, 2.0f32), (3.0, 4.0)];
        let back = Vec::<(f32, f32)>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn map_get_finds_entries() {
        let m = Value::Map(vec![("a".into(), Value::Bool(true))]);
        assert_eq!(m.get("a"), Some(&Value::Bool(true)));
        assert_eq!(m.get("b"), None);
        assert_eq!(Value::Null.get("a"), None);
    }
}
