//! Figure 9 reproduction: robustness-vs-ε curves for structurally different
//! SNNs against the CNN baseline, and the high/medium/low robustness
//! classification of §VI-C.
//!
//! The combinations are picked from a (reduced) grid exploration the same
//! way the paper picks its §VI-C examples: the sweet spot, the least robust
//! learnable cell, and a mid-pack cell.
//!
//! ```text
//! cargo run --release --example sweet_spot
//! ```

use explore::curves::{CurveSet, RobustnessCurve};
use explore::{algorithm, grid, pipeline, presets, GridSpec, RobustnessClass};

fn main() {
    let (config, epsilons) = presets::fig9();
    let data = pipeline::prepare_data(&config);

    // Stage 1: a coarse grid to locate interesting combinations (the full
    // paper grid works too; see the `heatmap` example's --full mode).
    let spec = GridSpec::new(vec![0.25, 1.0, 1.75, 2.5], vec![4, 12, 24]);
    println!(
        "stage 1: locating combinations on a {} cell grid ...",
        spec.len()
    );
    let coarse = grid::run_grid(&config, &data, &spec, &presets::heatmap_epsilons(), 2);

    let mut picks: Vec<snn::StructuralParams> = Vec::new();
    if let Some(sweet) = coarse.sweet_spot() {
        picks.push(sweet.structural);
    }
    if let Some(worst) = coarse.worst_learnable() {
        if !picks.contains(&worst.structural) {
            picks.push(worst.structural);
        }
    }
    // A mid-pack learnable cell different from the extremes.
    if let Some(mid) = coarse
        .outcomes
        .iter()
        .filter(|o| o.learnable && !picks.contains(&o.structural))
        .min_by(|a, b| {
            let med = |o: &explore::ExplorationOutcome| {
                (o.final_robustness().unwrap_or(0.0) - 0.5f32).abs()
            };
            med(a).total_cmp(&med(b))
        })
    {
        picks.push(mid.structural);
    }
    println!("picked combinations: {picks:?}\n");

    // Stage 2: full ε sweeps for the picks and the CNN.
    println!(
        "stage 2: sweeping eps for {} SNNs and the CNN ...",
        picks.len()
    );
    let mut set = CurveSet::new();
    let to_paper = |points: Vec<(f32, f32)>| {
        points
            .into_iter()
            .map(|(e, a)| (presets::pixel_eps_to_paper(e), a))
            .collect::<Vec<_>>()
    };
    for sp in &picks {
        let trained = pipeline::train_snn(&config, &data, *sp);
        let sweep = algorithm::sweep_attack(&config, &data, &trained.classifier, &epsilons);
        let outcome = algorithm::explore_trained(&config, &data, *sp, &trained, &epsilons);
        let class = match RobustnessClass::classify(&outcome) {
            Some(c) => format!("{c:?}"),
            None => "unlearnable".to_string(),
        };
        set.push(RobustnessCurve::new(
            format!("SNN {sp} [{class}]"),
            to_paper(sweep),
        ));
    }
    let cnn = pipeline::train_cnn(&config, &data);
    let cnn_sweep = algorithm::sweep_attack(&config, &data, &cnn.classifier, &epsilons);
    let cnn_curve = RobustnessCurve::new("CNN baseline", to_paper(cnn_sweep));

    println!("\naccuracy under PGD (eps in the paper's normalised units)\n");
    let mut all = set.clone();
    all.push(cnn_curve.clone());
    println!("{}", all.render_table());
    let out_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out_dir).expect("create target/figures");
    std::fs::write(
        out_dir.join("fig9_robustness_curves.svg"),
        explore::viz::svg_curves(&all, "Fig. 9: robustness of selected (Vth, T) vs CNN"),
    )
    .expect("write fig9 svg");
    std::fs::write(out_dir.join("fig9_robustness_curves.csv"), all.to_csv())
        .expect("write fig9 csv");

    for curve in set.curves() {
        if let Some(adv) = curve.max_advantage_over(&cnn_curve) {
            println!(
                "{}: max advantage over CNN {:+.1}% (paper: up to +85% for the sweet spot, negative for bad combinations)",
                curve.label(),
                adv * 100.0
            );
        }
    }
}
