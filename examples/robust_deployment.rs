//! Robust-deployment walkthrough: the workflow a practitioner follows to
//! ship a trustworthy SNN per the paper's recommendations.
//!
//! 1. explore a `(V_th, T)` grid (learnability + security, Algorithm 1);
//! 2. pick the sweet spot;
//! 3. fine-tune the deployment point around it *without retraining* (§VI-C);
//! 4. control-check against non-adversarial corruptions;
//! 5. checkpoint the final model.
//!
//! ```text
//! cargo run --release --example robust_deployment
//! ```

use std::fs;
use std::path::Path;

use explore::{corruption, grid, mismatch, pipeline, presets, GridSpec};

fn main() {
    let config = presets::quick();
    let data = pipeline::prepare_data(&config);
    let out_dir = Path::new("target/figures");
    fs::create_dir_all(out_dir).expect("create target/figures");

    // 1. Grid exploration.
    let spec = GridSpec::new(vec![0.5, 1.0, 1.5, 2.0], vec![4, 6, 8]);
    println!(
        "step 1: exploring {} (V_th, T) combinations ...",
        spec.len()
    );
    let result = grid::run_grid(&config, &data, &spec, &presets::heatmap_epsilons(), 2);
    println!(
        "  {:.0}% learnable at A_th = {:.0}%",
        result.learnable_fraction() * 100.0,
        config.accuracy_threshold * 100.0
    );

    // 2. Sweet spot.
    let sweet = result
        .sweet_spot()
        .expect("at least one combination must be learnable");
    println!(
        "step 2: sweet spot {} (clean {:.1}%, robustness at strongest eps {:.1}%)",
        sweet.structural,
        sweet.clean_accuracy * 100.0,
        sweet.final_robustness().unwrap_or(0.0) * 100.0
    );

    // 3. Fine-tune the deployment point around the sweet spot.
    println!("step 3: fine-tuning deployment point around the sweet spot ...");
    let candidates = mismatch::neighbourhood(sweet.structural, 0.25, 2);
    let tuned = mismatch::fine_tune_structural(
        &config,
        &data,
        sweet.structural,
        &candidates,
        &presets::heatmap_epsilons(),
    );
    for e in &tuned.entries {
        println!(
            "  candidate {}: clean {:.1}%, robustness {:?}",
            e.eval_at,
            e.clean_accuracy * 100.0,
            e.robustness
                .iter()
                .map(|&(_, r)| format!("{:.0}%", r * 100.0))
                .collect::<Vec<_>>()
        );
    }
    let deployment = tuned
        .best_deployment()
        .map(|e| e.eval_at)
        .unwrap_or(sweet.structural);
    println!("  selected deployment point: {deployment}");

    // 4. Corruption control: robustness to *non-adversarial* noise.
    println!("step 4: corruption control study ...");
    let control = corruption::corruption_robustness(&config, &data, deployment, &[0.2, 0.4]);
    println!(
        "  clean {:.1}% | mean corrupted {:.1}%",
        control.clean_accuracy * 100.0,
        control.mean_corrupted_accuracy() * 100.0
    );

    // 5. Checkpoint the deployed model.
    let trained = pipeline::train_snn(&config, &data, deployment);
    let ckpt = out_dir.join("deployed_snn.json");
    trained
        .classifier
        .params()
        .save_json(&ckpt)
        .expect("write checkpoint");
    println!(
        "step 5: checkpointed {} parameters to {}",
        trained.classifier.params().num_scalars(),
        ckpt.display()
    );

    // Verify the checkpoint round-trips.
    let reloaded = nn::Params::load_json(&ckpt).expect("reload checkpoint");
    assert_eq!(
        reloaded.num_scalars(),
        trained.classifier.params().num_scalars()
    );
    println!("checkpoint verified; deployment complete.");
}
