//! Quickstart: train one spiking network, attack it with PGD, and print its
//! robustness — the smallest end-to-end tour of the public API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use attacks::{evaluate_attack, Attack, Pgd, UniformNoise};
use explore::{pipeline, presets, RobustnessClass};
use snn::StructuralParams;

fn main() {
    // 1. A CPU-friendly experiment configuration: 12×12 SynthDigits and a
    //    small spiking MLP (see `presets::paper_scale()` for the original
    //    LeNet-5 / 28×28 dimensions).
    let config = presets::quick();
    let data = pipeline::prepare_data(&config);
    println!(
        "dataset: {} train / {} test samples of {}x{} digits",
        data.train.len(),
        data.test.len(),
        config.image_hw,
        config.image_hw
    );

    // 2. Train the SNN at a chosen structural point (V_th, T).
    // Peek at one generated digit (the dataset is procedural SynthDigits).
    let sample = data.test.subset(1);
    println!(
        "sample digit (label {}):\n{}",
        sample.labels()[0],
        sample.images().render_ascii_image()
    );

    let structural = StructuralParams::new(1.0, 6);
    println!("training SNN at {structural} ...");
    let trained = pipeline::train_snn(&config, &data, structural);
    println!(
        "clean test accuracy: {:.1}%",
        trained.clean_accuracy * 100.0
    );

    // 3. Attack it: white-box PGD at a mid-range noise budget, plus the
    //    random-noise control at the same budget.
    let eps = presets::paper_eps_to_pixel(1.0);
    let attack_set = data.test.subset(config.attack_samples);
    for attack in [
        &Pgd::standard(eps) as &dyn Attack,
        &UniformNoise::new(eps, config.seed),
    ] {
        let outcome = evaluate_attack(
            &trained.classifier,
            attack,
            attack_set.images(),
            attack_set.labels(),
            config.batch_size,
        );
        println!(
            "{:<12} eps={:.3} (paper eps=1.0): accuracy {:.1}% -> {:.1}%",
            attack.name(),
            eps,
            outcome.clean_accuracy * 100.0,
            outcome.adversarial_accuracy * 100.0,
        );
    }

    // 4. Summarise with the paper's Algorithm 1 and robustness classes.
    let outcome =
        explore::algorithm::explore_one(&config, &data, structural, &presets::epsilon_sweep());
    println!(
        "robustness sweep: {:?}",
        outcome
            .robustness
            .iter()
            .map(|&(e, r)| format!(
                "paper-eps {:.2} -> {:.0}%",
                presets::pixel_eps_to_paper(e),
                r * 100.0
            ))
            .collect::<Vec<_>>()
    );
    match RobustnessClass::classify(&outcome) {
        Some(class) => println!("robustness class at {structural}: {class:?}"),
        None => println!("combination {structural} did not meet the learnability threshold"),
    }

    // 5. Peek inside: per-layer firing rates of the trained network.
    let (model, params) = trained.classifier.into_parts();
    println!(
        "\nfiring activity on the attacked subset:\n{}",
        model.activity(&params, attack_set.images())
    );
}
