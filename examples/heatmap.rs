//! Figures 6–8 reproduction: accuracy heat maps over the `(V_th, T)` grid —
//! clean (Fig. 6) and under PGD at paper-ε 1.0 / 1.5 (Figs. 7, 8).
//!
//! ```text
//! cargo run --release --example heatmap            # reduced 4x3 grid, ~10 s
//! cargo run --release --example heatmap -- --full  # full 10x6 grid, ~1 min
//! ```
//!
//! Results are also written as JSON + CSV next to the binary output
//! (`target/figures/`), so the maps can be re-plotted without re-training.

use std::fs;
use std::path::Path;

use explore::heatmap::{Heatmap, HeatmapKind};
use explore::{grid, pipeline, presets, report, GridSpec};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (config, full_spec, epsilons) = presets::heatmap_grid();
    let spec = if full {
        full_spec
    } else {
        // A coarse sub-grid of the same axes for a fast demonstration.
        GridSpec::new(vec![0.25, 1.0, 1.75, 2.5], vec![4, 12, 24])
    };
    println!(
        "exploring {} (V_th, T) combinations ({} mode); threshold A_th = {:.0}%",
        spec.len(),
        if full {
            "full"
        } else {
            "reduced, pass --full for the paper grid"
        },
        config.accuracy_threshold * 100.0
    );

    let data = pipeline::prepare_data(&config);
    let started = std::time::Instant::now();
    let result = grid::run_grid(&config, &data, &spec, &epsilons, 2);
    println!(
        "grid explored in {:.1?}; {:.0}% of combinations learnable\n",
        started.elapsed(),
        result.learnable_fraction() * 100.0
    );

    let out_dir = Path::new("target/figures");
    fs::create_dir_all(out_dir).expect("create target/figures");
    report::save_json(&result, &out_dir.join("heatmap_grid.json")).expect("write grid json");
    fs::write(
        out_dir.join("summary.md"),
        report::markdown_summary(&result),
    )
    .expect("write markdown summary");

    let kinds = [
        ("fig6_clean", HeatmapKind::CleanAccuracy),
        (
            "fig7_eps1.0",
            HeatmapKind::AttackedAccuracy { eps: epsilons[0] },
        ),
        (
            "fig8_eps1.5",
            HeatmapKind::AttackedAccuracy { eps: epsilons[1] },
        ),
        // Retention = attacked/clean, the quantity behind the paper's
        // "loses only 6% of its initial accuracy" comparisons.
        (
            "retention_eps1.0",
            HeatmapKind::Retention { eps: epsilons[0] },
        ),
    ];
    for (name, kind) in kinds {
        let map = Heatmap::from_grid(&result, kind);
        println!("{}", map.render_ascii());
        fs::write(out_dir.join(format!("{name}.csv")), map.to_csv()).expect("write heatmap csv");
        fs::write(
            out_dir.join(format!("{name}.svg")),
            explore::viz::svg_heatmap(&map),
        )
        .expect("write heatmap svg");
    }

    if let Some(sweet) = result.sweet_spot() {
        println!(
            "sweet spot: {} (clean {:.0}%, robustness at strongest eps {:.0}%)",
            sweet.structural,
            sweet.clean_accuracy * 100.0,
            sweet.final_robustness().unwrap_or(0.0) * 100.0
        );
    }
    if let Some(worst) = result.worst_learnable() {
        println!(
            "least robust learnable combination: {} (clean {:.0}%, robustness {:.0}%)",
            worst.structural,
            worst.clean_accuracy * 100.0,
            worst.final_robustness().unwrap_or(0.0) * 100.0
        );
    }
    println!("\nartefacts written to {}", out_dir.display());
}
