//! Figure 1 reproduction: PGD accuracy-vs-ε for a CNN and an SNN with the
//! same topology (the paper's motivational case study, §I-B).
//!
//! The paper's observation: at low noise the CNN is (slightly) ahead, but
//! past a turnaround budget the SNN degrades far more slowly, opening a
//! large accuracy gap.
//!
//! ```text
//! cargo run --release --example cnn_vs_snn
//! ```

use explore::curves::{CurveSet, RobustnessCurve};
use explore::{algorithm, pipeline, presets};

fn main() {
    let (config, epsilons) = presets::fig1();
    let data = pipeline::prepare_data(&config);
    println!(
        "topology: {:?}, {} train samples, time window T={}",
        config.topology,
        data.train.len(),
        presets::fig1_structural().time_window
    );

    println!("training CNN baseline ...");
    let cnn = pipeline::train_cnn(&config, &data);
    println!("  clean accuracy {:.1}%", cnn.clean_accuracy * 100.0);

    println!("training SNN at {} ...", presets::fig1_structural());
    let snn = pipeline::train_snn(&config, &data, presets::fig1_structural());
    println!("  clean accuracy {:.1}%", snn.clean_accuracy * 100.0);

    println!("attacking both with PGD ({} steps) ...", config.pgd_steps);
    let cnn_curve = algorithm::sweep_attack(&config, &data, &cnn.classifier, &epsilons);
    let snn_curve = algorithm::sweep_attack(&config, &data, &snn.classifier, &epsilons);

    // Re-label the ε axis in the paper's normalised units for comparison.
    let to_paper = |points: Vec<(f32, f32)>| {
        points
            .into_iter()
            .map(|(e, a)| (presets::pixel_eps_to_paper(e), a))
            .collect::<Vec<_>>()
    };
    let cnn_curve = RobustnessCurve::new("CNN (LeNet-ish)", to_paper(cnn_curve));
    let snn_curve = RobustnessCurve::new(
        format!("SNN {}", presets::fig1_structural()),
        to_paper(snn_curve),
    );

    // The paper's pointers: ① CNN ahead at low ε, ② a turnaround point,
    // ③ a large SNN advantage beyond it.
    if let Some(adv) = snn_curve.max_advantage_over(&cnn_curve) {
        println!(
            "max SNN advantage over CNN: {:.1}% accuracy (paper reports up to ~50% in Fig. 1)",
            adv * 100.0
        );
    }
    let crossover = cnn_curve
        .points()
        .iter()
        .zip(snn_curve.points())
        .find(|((_, ca), (_, sa))| sa > ca)
        .map(|((e, _), _)| *e);
    match crossover {
        Some(e) => println!("turnaround point: paper-eps {e:.2} (paper: ~0.5)"),
        None => println!("no turnaround observed in this run"),
    }

    let mut set = CurveSet::new();
    set.push(cnn_curve);
    set.push(snn_curve);
    println!("\naccuracy under PGD (eps in the paper's normalised units)\n");
    println!("{}", set.render_table());
    let out_dir = std::path::Path::new("target/figures");
    std::fs::create_dir_all(out_dir).expect("create target/figures");
    std::fs::write(
        out_dir.join("fig1_cnn_vs_snn.svg"),
        explore::viz::svg_curves(&set, "Fig. 1: PGD on CNN vs SNN (same topology)"),
    )
    .expect("write fig1 svg");
}
