//! Temporal-data extension: direction-of-motion classification, where the
//! time window is *semantically necessary* rather than a rate-coding
//! convenience.
//!
//! The MovingBars task stacks frames of a sweeping bar; no single frame
//! identifies the direction. Two models compete:
//!
//! * a CNN that sees all frames at once, stacked as input channels (the
//!   standard frame-stacking baseline), and
//! * a spiking MLP that *replays* the frames through its time window
//!   ([`snn::Encoder::Replay`]) and integrates the motion in its membrane
//!   dynamics.
//!
//! Both are then attacked with PGD, extending the paper's robustness
//! question to temporal inputs.
//!
//! ```text
//! cargo run --release --example temporal_motion
//! ```

use dataset::motion::MovingBars;
use nn::{Adam, Classifier, Cnn, CnnConfig, Params};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn::{Encoder, SnnConfig, SpikingMlp, StructuralParams};

use attacks::{evaluate_attack, Pgd};

const HW: usize = 8;
const FRAMES: usize = 8;
const TIME_WINDOW: usize = 16;

fn main() {
    let train = MovingBars::new(HW, FRAMES)
        .samples_per_class(48)
        .seed(0)
        .generate();
    let test = MovingBars::new(HW, FRAMES)
        .samples_per_class(12)
        .seed(999)
        .generate();
    println!(
        "MovingBars: {} train / {} test sequences of {FRAMES} frames at {HW}x{HW}",
        train.len(),
        test.len()
    );

    // --- CNN baseline: frames stacked as input channels -----------------
    let mut rng = StdRng::seed_from_u64(1);
    let mut cnn_params = Params::new();
    let cnn_cfg = CnnConfig {
        in_channels: FRAMES,
        in_hw: HW,
        conv_blocks: vec![nn::ConvBlockConfig {
            out_channels: 8,
            kernel: 3,
            padding: 1,
            pool: 2,
        }],
        fc_hidden: vec![32],
        classes: 4,
    };
    let cnn = Cnn::new(&mut cnn_params, &mut rng, &cnn_cfg);
    let mut opt = Adam::new(5e-3);
    for _ in 0..20 {
        nn::train::train_epoch(
            &cnn,
            &mut cnn_params,
            &mut opt,
            train.images(),
            train.labels(),
            32,
            &mut rng,
        );
    }
    let cnn_acc = nn::train::evaluate(&cnn, &cnn_params, test.images(), test.labels(), 48);
    println!("frame-stacked CNN: test accuracy {:.1}%", cnn_acc * 100.0);

    // --- Spiking MLP: frames replayed through the time window -----------
    let mut rng = StdRng::seed_from_u64(2);
    let mut snn_params = Params::new();
    let mut snn_cfg = SnnConfig::new(StructuralParams::new(0.5, TIME_WINDOW));
    snn_cfg.encoder = Encoder::Replay {
        frames: FRAMES,
        time_window: TIME_WINDOW,
    };
    // One frame (HW*HW pixels) enters the network per step.
    let snn = SpikingMlp::new(&mut snn_params, &mut rng, HW * HW, &[48], 4, &snn_cfg);
    let mut opt = Adam::new(1e-2);
    for _ in 0..20 {
        nn::train::train_epoch(
            &snn,
            &mut snn_params,
            &mut opt,
            train.images(),
            train.labels(),
            32,
            &mut rng,
        );
    }
    let snn_acc = nn::train::evaluate(&snn, &snn_params, test.images(), test.labels(), 48);
    println!("frame-replay SNN:  test accuracy {:.1}%", snn_acc * 100.0);

    // --- Robustness of both under PGD ------------------------------------
    let eps = 0.15; // pixel scale
    let cnn_clf = Classifier::new(cnn, cnn_params);
    let snn_clf = Classifier::new(snn, snn_params);
    for (tag, clf) in [
        ("CNN", &cnn_clf as &dyn nn::AdversarialTarget),
        ("SNN", &snn_clf),
    ] {
        let outcome = evaluate_attack(clf, &Pgd::standard(eps), test.images(), test.labels(), 24);
        println!(
            "{tag} under PGD eps={eps}: {:.1}% -> {:.1}%",
            outcome.clean_accuracy * 100.0,
            outcome.adversarial_accuracy * 100.0
        );
    }
    println!(
        "\nthe SNN consumes one frame per step (time window {TIME_WINDOW}); the class is\n\
         carried by motion across frames, so T is structurally necessary here.\n\
         note the robustness flip vs the static-digit experiments: frame replay\n\
         gives the attacker independent leverage on every frame, so temporal\n\
         SNN inputs are *not* automatically more robust."
    );
}
