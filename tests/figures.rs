//! Figure-level integration tests: each paper figure's generation path runs
//! end to end at reduced scale and produces structurally valid artefacts.
//!
//! These tests exercise exactly the code the `examples/` binaries and the
//! `bench` crate use; the full-size runs live there.

use explore::curves::{CurveSet, RobustnessCurve};
use explore::heatmap::{Heatmap, HeatmapKind};
use explore::{algorithm, grid, pipeline, presets, GridSpec, RobustnessClass};
use snn::StructuralParams;

/// Shrinks a preset so a figure path runs in seconds inside the test suite.
fn shrink(mut cfg: explore::ExperimentConfig) -> explore::ExperimentConfig {
    cfg.epochs = 6;
    cfg.train_per_class = 16;
    cfg.test_per_class = 4;
    cfg.attack_samples = 12;
    cfg.pgd_steps = 3;
    // Keep the learnability gate permissive at this tiny scale: the tests
    // check figure *structure*, not model quality.
    cfg.accuracy_threshold = 0.2;
    cfg
}

#[test]
fn fig1_cnn_vs_snn_curves_have_the_right_shape() {
    let (cfg, epsilons) = presets::fig1();
    let cfg = shrink(cfg);
    let data = pipeline::prepare_data(&cfg);
    let cnn = pipeline::train_cnn(&cfg, &data);
    let snn = pipeline::train_snn(&cfg, &data, presets::fig1_structural());
    let cnn_curve = RobustnessCurve::new(
        "cnn",
        algorithm::sweep_attack(&cfg, &data, &cnn.classifier, &epsilons),
    );
    let snn_curve = RobustnessCurve::new(
        "snn",
        algorithm::sweep_attack(&cfg, &data, &snn.classifier, &epsilons),
    );
    // Both curves cover the full sweep and start at their clean accuracy.
    assert_eq!(cnn_curve.points().len(), epsilons.len());
    assert_eq!(snn_curve.points().len(), epsilons.len());
    let r0 = cnn_curve.at(0.0).unwrap();
    assert!(r0 > 0.0, "clean accuracy must be positive");
    // Accuracy at the strongest budget must not exceed the clean accuracy.
    assert!(cnn_curve.points().last().unwrap().1 <= r0 + 1e-6);
    // The comparison statistic the figure reports is computable.
    assert!(snn_curve.max_advantage_over(&cnn_curve).is_some());
}

#[test]
fn fig6_to_8_heatmaps_cover_grid_and_mask_unlearnable() {
    let (cfg, _, epsilons) = presets::heatmap_grid();
    let cfg = shrink(cfg);
    let data = pipeline::prepare_data(&cfg);
    let spec = GridSpec::new(vec![0.5, 2.0], vec![4, 8]);
    let result = grid::run_grid(&cfg, &data, &spec, &epsilons, 2);
    assert_eq!(result.outcomes.len(), 4);

    let clean = Heatmap::from_grid(&result, HeatmapKind::CleanAccuracy);
    for sp in spec.cells() {
        assert!(
            clean.value_at(sp.v_th, sp.time_window).is_some(),
            "clean heat map must cover {sp}"
        );
    }
    let attacked = Heatmap::from_grid(&result, HeatmapKind::AttackedAccuracy { eps: epsilons[0] });
    for sp in spec.cells() {
        let outcome = result.outcome_at(sp.v_th, sp.time_window).unwrap();
        assert_eq!(
            attacked.value_at(sp.v_th, sp.time_window).is_some(),
            outcome.learnable,
            "attacked heat map must mask exactly the unlearnable cells"
        );
    }
    // Renderings are non-trivial.
    assert!(clean.render_ascii().lines().count() >= 2 + spec.windows().len());
    assert!(attacked.to_csv().lines().count() == 1 + spec.len());
}

#[test]
fn fig9_pick_and_sweep_produces_classifiable_curves() {
    let (cfg, epsilons) = presets::fig9();
    let cfg = shrink(cfg);
    let data = pipeline::prepare_data(&cfg);
    let spec = GridSpec::new(vec![0.5, 2.0], vec![4, 8]);
    let coarse = grid::run_grid(&cfg, &data, &spec, &presets::heatmap_epsilons(), 2);

    let sweet = coarse.sweet_spot().expect("some cell must be learnable");
    let outcome = algorithm::explore_one(&cfg, &data, sweet.structural, &epsilons);
    assert!(outcome.learnable);
    assert_eq!(outcome.robustness.len(), epsilons.len());
    assert!(
        RobustnessClass::classify(&outcome).is_some(),
        "a learnable attacked cell must be classifiable"
    );

    let mut set = CurveSet::new();
    set.push(RobustnessCurve::new("snn", outcome.robustness.clone()));
    let cnn = pipeline::train_cnn(&cfg, &data);
    set.push(RobustnessCurve::new(
        "cnn",
        algorithm::sweep_attack(&cfg, &data, &cnn.classifier, &epsilons),
    ));
    let table = set.render_table();
    assert!(table.contains("snn") && table.contains("cnn"));
    // Every ε of the sweep appears as a row.
    assert_eq!(table.lines().count(), 2 + epsilons.len());
}

#[test]
fn grid_results_serialise_and_reload() {
    let (cfg, _, epsilons) = presets::heatmap_grid();
    let cfg = shrink(cfg);
    let data = pipeline::prepare_data(&cfg);
    let spec = GridSpec::new(vec![1.0], vec![4]);
    let result = grid::run_grid(&cfg, &data, &spec, &epsilons, 1);
    let dir = std::env::temp_dir().join("spiking_armor_figures_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("grid.json");
    explore::report::save_json(&result, &path).unwrap();
    let back: explore::GridResult = explore::report::load_json(&path).unwrap();
    assert_eq!(result, back);
}

/// One cell of the paper-scale configuration (28×28, spiking LeNet-5,
/// `T = 16`), shrunk to a smoke-testable sample count. Run explicitly with
/// `cargo test -- --ignored` on a machine with minutes to spare.
#[test]
#[ignore = "paper-scale smoke test: minutes of CPU"]
fn paper_scale_single_cell_smoke() {
    let (mut cfg, _, _) = presets::paper_scale();
    cfg.train_per_class = 24;
    cfg.test_per_class = 4;
    cfg.epochs = 2;
    cfg.attack_samples = 10;
    cfg.pgd_steps = 5;
    cfg.accuracy_threshold = 0.15;
    let data = pipeline::prepare_data(&cfg);
    let outcome = algorithm::explore_one(
        &cfg,
        &data,
        StructuralParams::new(1.0, 16),
        &presets::heatmap_epsilons(),
    );
    assert!(outcome.clean_accuracy.is_finite());
    if outcome.learnable {
        assert_eq!(outcome.robustness.len(), 2);
    }
}

#[test]
fn paper_default_structural_point_is_explorable() {
    // The paper's (V_th, T) = (1, 64) default: validate that the library
    // accepts it and the scaled presets expose a faithful analogue.
    let paper_default = StructuralParams::paper_default();
    assert_eq!(paper_default.v_th, 1.0);
    assert_eq!(paper_default.time_window, 64);
    let (_, grid, _) = presets::paper_scale();
    assert!(grid
        .cells()
        .any(|sp| sp.v_th == 1.0 && sp.time_window == 64));
}
