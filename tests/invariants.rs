//! Cross-crate property-based tests: invariants that must hold for *any*
//! input, checked with proptest over randomly generated tensors, models and
//! attack budgets.

use proptest::prelude::*;

use attacks::{Attack, Fgsm, Pgd, UniformNoise};
use nn::{AdversarialTarget, Classifier, Cnn, CnnConfig, Params};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn::{Encoder, SnnConfig, SpikingMlp, StructuralParams};
use tensor::Tensor;

fn tiny_cnn(seed: u64) -> Classifier<Cnn> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut params = Params::new();
    let model = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(8, 4));
    Classifier::new(model, params)
}

fn tiny_snn(seed: u64, v_th: f32, t: usize) -> Classifier<SpikingMlp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut params = Params::new();
    let cfg = SnnConfig::new(StructuralParams::new(v_th, t));
    let model = SpikingMlp::new(&mut params, &mut rng, 64, &[16], 4, &cfg);
    Classifier::new(model, params)
}

fn image_strategy() -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(0.0f32..=1.0, 64).prop_map(|v| Tensor::from_vec(v, &[1, 1, 8, 8]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every attack keeps its perturbation inside the ε-ball and the pixel
    /// box, for arbitrary images, budgets and both model families.
    #[test]
    fn attacks_always_respect_budget(
        x in image_strategy(),
        eps in 0.0f32..0.6,
        label in 0usize..4,
        seed in 0u64..4,
    ) {
        let cnn = tiny_cnn(seed);
        let snn = tiny_snn(seed, 0.5 + seed as f32 * 0.5, 3);
        for target in [&cnn as &dyn AdversarialTarget, &snn] {
            for attack in [
                &Pgd::standard(eps) as &dyn Attack,
                &Fgsm::new(eps),
                &UniformNoise::new(eps, seed),
            ] {
                let adv = attack.perturb(target, &x, &[label]);
                prop_assert!(adv.sub(&x).max_abs() <= eps + 1e-5,
                    "{} exceeded eps {eps}", attack.name());
                prop_assert!(adv.min() >= 0.0 && adv.max() <= 1.0,
                    "{} left the pixel box", attack.name());
                prop_assert_eq!(adv.dims(), x.dims());
            }
        }
    }

    /// The SNN forward pass is deterministic and finite for arbitrary valid
    /// images and structural parameters (constant-current encoding).
    #[test]
    fn snn_logits_are_finite_and_deterministic(
        x in image_strategy(),
        v_th_step in 1u8..6,
        t in 1usize..6,
    ) {
        let v_th = v_th_step as f32 * 0.5;
        let clf = tiny_snn(1, v_th, t);
        let a = clf.logits(&x);
        let b = clf.logits(&x);
        prop_assert!(!a.has_non_finite());
        prop_assert_eq!(a, b);
    }

    /// White-box loss gradients are finite for both families and zero-budget
    /// PGD is always the identity.
    #[test]
    fn gradients_finite_and_zero_eps_identity(
        x in image_strategy(),
        label in 0usize..4,
    ) {
        let cnn = tiny_cnn(2);
        let (loss, grad) = cnn.loss_and_input_grad(&x, &[label]);
        prop_assert!(loss.is_finite());
        prop_assert!(!grad.has_non_finite());
        let adv = Pgd::standard(0.0).perturb(&cnn, &x, &[label]);
        prop_assert_eq!(adv, x);
    }

    /// Poisson encoding produces strictly binary spike trains whose rate is
    /// bounded by the pixel intensity axis, for any seed.
    #[test]
    fn poisson_spikes_binary_for_any_seed(seed in 0u64..1000, step in 0usize..64) {
        let tape = ad::Tape::new();
        let x = tape.leaf(Tensor::from_vec(
            (0..16).map(|i| i as f32 / 15.0).collect(),
            &[16],
        ));
        let s = Encoder::poisson(seed).encode_step(x, step).value();
        prop_assert!(s.data().iter().all(|&v| v == 0.0 || v == 1.0));
        // Intensity 0 never fires; intensity 1 always fires.
        prop_assert_eq!(s.data()[0], 0.0);
        prop_assert_eq!(s.data()[15], 1.0);
    }

    /// Robustness evaluation accuracy values are proper probabilities and
    /// success_rate is their complement.
    #[test]
    fn attack_outcomes_are_probabilities(
        eps in 0.0f32..0.5,
        n in 2usize..6,
    ) {
        let clf = tiny_cnn(3);
        let mut rng = StdRng::seed_from_u64(9);
        let images = tensor::init::uniform(&mut rng, &[n, 1, 8, 8], 0.0, 1.0);
        let labels: Vec<usize> = (0..n).map(|i| i % 4).collect();
        let out = attacks::evaluate_attack(&clf, &Pgd::standard(eps), &images, &labels, 2);
        prop_assert!((0.0..=1.0).contains(&out.clean_accuracy));
        prop_assert!((0.0..=1.0).contains(&out.adversarial_accuracy));
        prop_assert!((out.success_rate + out.adversarial_accuracy - 1.0).abs() < 1e-6);
        prop_assert_eq!(out.samples, n);
    }
}

/// LIF reset invariants: under subtraction reset the post-step membrane is
/// exactly `β·v + I − s·V_th`; under zero reset a spike always clears the
/// membrane to zero; and a spike occurs iff the integrated membrane reached
/// the threshold.
#[test]
fn membrane_reset_invariants() {
    use ad::Tape;
    use snn::{LifCell, LifParams, ResetMode};
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..100 {
        let v_th = 0.5 + rand::Rng::gen_range(&mut rng, 0.0..2.0f32);
        let input = rand::Rng::gen_range(&mut rng, -1.0..v_th * 3.0);
        let v0 = rand::Rng::gen_range(&mut rng, 0.0..v_th);
        let v_int = 0.9 * v0 + input;

        let tape = Tape::new();
        let cell = LifCell::new(LifParams::new(v_th));
        let (s, v1) = cell.step(
            tape.leaf(Tensor::scalar(input)),
            tape.leaf(Tensor::scalar(v0)),
        );
        let spiked = s.value().item();
        assert_eq!(
            spiked > 0.0,
            v_int >= v_th,
            "spike condition mismatch: v_int {v_int}, v_th {v_th}"
        );
        assert!(
            (v1.value().item() - (v_int - spiked * v_th)).abs() < 1e-5,
            "subtraction reset arithmetic violated"
        );

        let tape = Tape::new();
        let cell = LifCell::new(LifParams::new(v_th).with_reset(ResetMode::Zero));
        let (s, v1) = cell.step(
            tape.leaf(Tensor::scalar(input)),
            tape.leaf(Tensor::scalar(v0)),
        );
        if s.value().item() > 0.0 {
            assert_eq!(v1.value().item(), 0.0, "zero reset must clear the membrane");
        }
    }
}

/// The frame-replay pipeline end to end: a spiking MLP learns a purely
/// temporal task (direction of motion) that no single frame can solve.
#[test]
fn replay_snn_learns_temporal_motion() {
    use dataset::motion::MovingBars;
    use nn::Adam;
    use snn::SnnConfig;

    let train = MovingBars::new(6, 6)
        .samples_per_class(24)
        .seed(0)
        .generate();
    let test = MovingBars::new(6, 6)
        .samples_per_class(6)
        .seed(99)
        .generate();
    let mut rng = StdRng::seed_from_u64(5);
    let mut params = Params::new();
    let mut cfg = SnnConfig::new(StructuralParams::new(0.5, 12));
    cfg.encoder = Encoder::Replay {
        frames: 6,
        time_window: 12,
    };
    let model = SpikingMlp::new(&mut params, &mut rng, 36, &[32], 4, &cfg);
    let mut opt = Adam::new(1e-2);
    for _ in 0..25 {
        nn::train::train_epoch(
            &model,
            &mut params,
            &mut opt,
            train.images(),
            train.labels(),
            24,
            &mut rng,
        );
    }
    let acc = nn::train::evaluate(&model, &params, test.images(), test.labels(), 24);
    assert!(
        acc > 0.7,
        "replay SNN failed the temporal task: accuracy {acc}"
    );
}
