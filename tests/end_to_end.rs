//! End-to-end integration: data generation → training → white-box attack →
//! Algorithm 1, across crate boundaries.

use attacks::{evaluate_attack, Attack, Fgsm, Pgd, UniformNoise};
use explore::{algorithm, pipeline, presets};
use nn::AdversarialTarget;
use snn::StructuralParams;

fn quick_setup() -> (explore::ExperimentConfig, pipeline::SplitData) {
    let config = presets::quick();
    let data = pipeline::prepare_data(&config);
    (config, data)
}

#[test]
fn full_pipeline_cnn() {
    let (config, data) = quick_setup();
    let cnn = pipeline::train_cnn(&config, &data);
    assert!(cnn.clean_accuracy >= config.accuracy_threshold);

    let attack_set = data.test.subset(20);
    let outcome = evaluate_attack(
        &cnn.classifier,
        &Pgd::standard(presets::paper_eps_to_pixel(1.0)),
        attack_set.images(),
        attack_set.labels(),
        config.batch_size,
    );
    // A white-box PGD at paper-eps 1.0 must do real damage to an undefended
    // CNN — and never *increase* accuracy.
    assert!(outcome.adversarial_accuracy <= outcome.clean_accuracy);
    assert!(
        outcome.adversarial_accuracy < cnn.clean_accuracy,
        "PGD had no effect at a strong budget"
    );
}

#[test]
fn full_pipeline_snn_with_all_attacks() {
    let (config, data) = quick_setup();
    let snn = pipeline::train_snn(&config, &data, StructuralParams::new(1.0, 6));
    assert!(snn.clean_accuracy >= config.accuracy_threshold);

    let attack_set = data.test.subset(16);
    let eps = presets::paper_eps_to_pixel(1.0);
    let pgd = evaluate_attack(
        &snn.classifier,
        &Pgd::standard(eps),
        attack_set.images(),
        attack_set.labels(),
        config.batch_size,
    );
    let fgsm = evaluate_attack(
        &snn.classifier,
        &Fgsm::new(eps),
        attack_set.images(),
        attack_set.labels(),
        config.batch_size,
    );
    let noise = evaluate_attack(
        &snn.classifier,
        &UniformNoise::new(eps, 3),
        attack_set.images(),
        attack_set.labels(),
        config.batch_size,
    );
    // Attack-strength ordering on average: PGD >= FGSM-ish >> random noise.
    assert!(
        pgd.adversarial_accuracy <= noise.adversarial_accuracy,
        "PGD ({}) should beat random noise ({})",
        pgd.adversarial_accuracy,
        noise.adversarial_accuracy
    );
    assert!(
        fgsm.adversarial_accuracy <= noise.adversarial_accuracy + 0.15,
        "FGSM should be at least roughly as strong as random noise"
    );
}

#[test]
fn white_box_gradients_exist_for_both_model_families() {
    let (config, data) = quick_setup();
    let x = data.test.subset(2);
    let cnn = pipeline::train_cnn(&config, &data);
    let snn = pipeline::train_snn(&config, &data, StructuralParams::new(1.0, 6));
    let (_, g_cnn) = cnn.classifier.loss_and_input_grad(x.images(), x.labels());
    let (_, g_snn) = snn.classifier.loss_and_input_grad(x.images(), x.labels());
    assert!(g_cnn.max_abs() > 0.0);
    assert!(
        g_snn.max_abs() > 0.0,
        "surrogate gradients must reach the input"
    );
    assert!(!g_cnn.has_non_finite());
    assert!(!g_snn.has_non_finite());
}

#[test]
fn algorithm_one_respects_learnability_gate() {
    let (mut config, data) = quick_setup();
    config.epochs = 1; // deliberately undertrained at a hostile threshold
    let bad = algorithm::explore_one(
        &config,
        &data,
        StructuralParams::new(200.0, 2),
        &[presets::paper_eps_to_pixel(1.0)],
    );
    assert!(!bad.learnable);
    assert!(bad.robustness.is_empty());
}

#[test]
fn structural_parameters_change_robustness() {
    // The paper's core claim (A1): different (V_th, T) at comparable
    // learnability behave differently under attack. We assert the weaker,
    // stable property that the full exploration produces *different*
    // behaviour (clean accuracy, robustness profile) for different
    // structural points. Budgets stay mild so strong attacks don't floor
    // both models to an identical all-zero profile on the small attack set.
    let (config, data) = quick_setup();
    let eps: Vec<f32> = vec![
        presets::paper_eps_to_pixel(0.25),
        presets::paper_eps_to_pixel(0.5),
    ];
    let a = algorithm::explore_one(&config, &data, StructuralParams::new(0.5, 4), &eps);
    let b = algorithm::explore_one(&config, &data, StructuralParams::new(2.0, 6), &eps);
    if a.learnable && b.learnable {
        assert_ne!(
            (a.clean_accuracy, &a.robustness),
            (b.clean_accuracy, &b.robustness),
            "two distinct structural points produced identical behaviour"
        );
    }
}

#[test]
fn attack_evaluation_counts_are_consistent() {
    let (config, data) = quick_setup();
    let snn = pipeline::train_snn(&config, &data, StructuralParams::new(1.0, 6));
    let attack_set = data.test.subset(10);
    let outcome = evaluate_attack(
        &snn.classifier,
        &Pgd::standard(0.1),
        attack_set.images(),
        attack_set.labels(),
        3, // ragged batching
    );
    assert_eq!(outcome.samples, 10);
    assert!((outcome.success_rate + outcome.adversarial_accuracy - 1.0).abs() < 1e-6);
}

#[test]
fn perturbations_respect_budget_on_real_models() {
    let (config, data) = quick_setup();
    let snn = pipeline::train_snn(&config, &data, StructuralParams::new(1.0, 6));
    let x = data.test.subset(4);
    for eps in [0.05f32, 0.2, 0.46] {
        let attack = Pgd::standard(eps);
        let adv = attack.perturb(&snn.classifier, x.images(), x.labels());
        assert!(adv.sub(x.images()).max_abs() <= eps + 1e-5);
        assert!(adv.min() >= 0.0 && adv.max() <= 1.0);
    }
}
