//! Cross-crate persistence and reporting: checkpoints reload into working
//! classifiers, grids round-trip through JSON, and the figure artefacts
//! (CSV/SVG) are structurally valid.

use std::fs;

use explore::curves::{CurveSet, RobustnessCurve};
use explore::heatmap::{Heatmap, HeatmapKind};
use explore::{grid, pipeline, presets, viz, GridSpec};
use nn::{AdversarialTarget, Classifier, Params};
use snn::StructuralParams;

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spiking_armor_{name}"));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_config() -> explore::ExperimentConfig {
    let mut cfg = presets::quick();
    cfg.epochs = 4;
    cfg.attack_samples = 8;
    cfg.pgd_steps = 2;
    cfg.accuracy_threshold = 0.15;
    cfg
}

#[test]
fn checkpoint_reload_reproduces_predictions() {
    let cfg = small_config();
    let data = pipeline::prepare_data(&cfg);
    let trained = pipeline::train_snn(&cfg, &data, StructuralParams::new(1.0, 4));
    let x = data.test.subset(6);
    let before = trained.classifier.predict(x.images());

    let path = tmp_dir("ckpt").join("snn.json");
    trained.classifier.params().save_json(&path).unwrap();
    let reloaded = Params::load_json(&path).unwrap();

    // Same architecture + reloaded weights must predict identically.
    let (model, _) = trained.classifier.into_parts();
    let clf = Classifier::new(model, reloaded);
    assert_eq!(clf.predict(x.images()), before);
}

#[test]
fn grid_json_round_trip_preserves_sweet_spot() {
    let cfg = small_config();
    let data = pipeline::prepare_data(&cfg);
    let spec = GridSpec::new(vec![0.5, 1.5], vec![4]);
    let result = grid::run_grid(&cfg, &data, &spec, &presets::heatmap_epsilons(), 2);

    let path = tmp_dir("grid").join("grid.json");
    explore::report::save_json(&result, &path).unwrap();
    let back: explore::GridResult = explore::report::load_json(&path).unwrap();
    assert_eq!(back, result);
    assert_eq!(
        back.sweet_spot().map(|o| o.structural),
        result.sweet_spot().map(|o| o.structural)
    );
}

#[test]
fn svg_artefacts_are_valid_for_real_grids() {
    let cfg = small_config();
    let data = pipeline::prepare_data(&cfg);
    let spec = GridSpec::new(vec![0.5, 1.5], vec![4, 8]);
    let result = grid::run_grid(&cfg, &data, &spec, &presets::heatmap_epsilons(), 2);

    let map = Heatmap::from_grid(&result, HeatmapKind::CleanAccuracy);
    let svg = viz::svg_heatmap(&map);
    assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    assert_eq!(svg.matches("<rect").count(), spec.len());

    let mut curves = CurveSet::new();
    for o in result.outcomes.iter().filter(|o| o.learnable) {
        if !o.robustness.is_empty() {
            curves.push(RobustnessCurve::new(
                format!("{}", o.structural),
                o.robustness.clone(),
            ));
        }
    }
    if !curves.curves().is_empty() {
        let svg = viz::svg_curves(&curves, "integration");
        assert_eq!(svg.matches("<polyline").count(), curves.curves().len());
    }
}

#[test]
fn csv_artefacts_parse_back_numerically() {
    let cfg = small_config();
    let data = pipeline::prepare_data(&cfg);
    let spec = GridSpec::new(vec![1.0], vec![4]);
    let result = grid::run_grid(&cfg, &data, &spec, &presets::heatmap_epsilons(), 1);
    let map = Heatmap::from_grid(&result, HeatmapKind::CleanAccuracy);
    let csv = map.to_csv();
    let mut lines = csv.lines();
    assert_eq!(lines.next(), Some("time_window,v_th,value"));
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 3, "bad CSV row {line}");
        fields[0].parse::<usize>().unwrap();
        fields[1].parse::<f32>().unwrap();
        if !fields[2].is_empty() {
            let v: f32 = fields[2].parse().unwrap();
            assert!((0.0..=1.0).contains(&v));
        }
    }
}

#[test]
fn repeated_stats_are_serialisable_and_sane() {
    let mut cfg = small_config();
    cfg.epochs = 2;
    cfg.train_per_class = 8;
    let out = explore::stats::explore_repeated(
        &cfg,
        StructuralParams::new(1.0, 4),
        &[presets::paper_eps_to_pixel(0.5)],
        2,
    );
    let path = tmp_dir("stats").join("repeated.json");
    explore::report::save_json(&out, &path).unwrap();
    let back: explore::stats::RepeatedOutcome = explore::report::load_json(&path).unwrap();
    assert_eq!(back, out);
    assert!(back.clean_accuracy.std >= 0.0);
}
