//! Kill-and-resume acceptance tests for the run store.
//!
//! The contract under test: a grid run that is killed partway through and
//! restarted with `--resume` produces artefacts **bitwise-identical** to an
//! uninterrupted run, and the journal proves which cells were served from
//! the cache instead of retrained.

use std::fs;
use std::path::PathBuf;

use explore::{grid, pipeline, presets, runs, GridSpec};
use snn::StructuralParams;
use store::journal::read_events;
use store::Event;

fn tmp_out(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spiking_armor_resume_{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_config() -> explore::ExperimentConfig {
    let mut cfg = presets::quick();
    cfg.epochs = 3;
    cfg.attack_samples = 8;
    cfg.pgd_steps = 2;
    cfg.accuracy_threshold = 0.15;
    cfg
}

fn small_grid() -> (GridSpec, Vec<f32>) {
    (GridSpec::new(vec![0.5, 1.5], vec![2, 4]), vec![0.1f32, 0.3])
}

/// The acceptance scenario from the issue: run a small grid to completion,
/// "kill" it after N cells (by deleting the later cells' checkpoints and
/// tearing the journal's last line, which is exactly the state a SIGKILL
/// leaves behind), re-run with resume, and require (a) the re-run's
/// artefact bytes equal the uninterrupted run's, and (b) the journal shows
/// the first N cells loaded from cache, the rest retrained.
#[test]
fn killed_grid_resumes_bitwise_identical() {
    let cfg = small_config();
    let data = pipeline::prepare_data(&cfg);
    let (spec, epsilons) = small_grid();
    let cells: Vec<StructuralParams> = spec.cells().collect();
    assert_eq!(cells.len(), 4);

    // Uninterrupted reference run.
    let out_a = tmp_out("reference");
    let opened = runs::open(&out_a, "heatmap", &cfg, Some(&spec), &epsilons, false).unwrap();
    assert!(!opened.resumed);
    let reference = grid::run_grid_stored(&cfg, &data, &spec, &epsilons, 2, Some(&opened.store));
    let artifact_a = out_a.join("grid.json");
    explore::report::save_json(&reference, &artifact_a).unwrap();

    // Interrupted run: complete it, then reconstruct the on-disk state of a
    // run killed after the first two cells.
    let out_b = tmp_out("interrupted");
    let opened = runs::open(&out_b, "heatmap", &cfg, Some(&spec), &epsilons, false).unwrap();
    let _ = grid::run_grid_stored(&cfg, &data, &spec, &epsilons, 2, Some(&opened.store));
    let run_dir = opened.store.dir().to_path_buf();
    drop(opened);
    let (survivors, killed) = cells.split_at(2);
    for &sp in killed {
        fs::remove_dir_all(run_dir.join("cells").join(runs::cell_key(sp))).unwrap();
    }
    // Tear the journal mid-line, as a kill during an append would.
    let journal_path = run_dir.join("events.jsonl");
    let journal_bytes = fs::read(&journal_path).unwrap();
    fs::write(&journal_path, &journal_bytes[..journal_bytes.len() - 7]).unwrap();

    // Resume. A different thread count on purpose: parallelism must not
    // key the cache or change the results.
    let resumed = runs::open(&out_b, "heatmap", &cfg, Some(&spec), &epsilons, true).unwrap();
    assert!(resumed.resumed);
    let rerun = grid::run_grid_stored(&cfg, &data, &spec, &epsilons, 1, Some(&resumed.store));
    let artifact_b = out_b.join("grid.json");
    explore::report::save_json(&rerun, &artifact_b).unwrap();

    // (a) Bitwise-identical artefacts.
    assert_eq!(rerun, reference);
    assert_eq!(
        fs::read(&artifact_a).unwrap(),
        fs::read(&artifact_b).unwrap(),
        "resumed artefact must be bitwise-identical to the uninterrupted one"
    );

    // (b) The journal proves the cache behaviour: after the resumed
    // RunStarted, the surviving cells were loaded, the killed ones
    // retrained.
    let events = read_events(resumed.store.journal_path()).unwrap();
    let last_start = events
        .iter()
        .rposition(|e| matches!(e, Event::RunStarted { resumed: true }))
        .expect("the resumed run logged its start");
    let after: &[Event] = &events[last_start + 1..];
    for &sp in survivors {
        let key = runs::cell_key(sp);
        assert!(
            after
                .iter()
                .any(|e| matches!(e, Event::CellCached { cell, .. } if *cell == key)),
            "surviving cell {key} must be served from the cache"
        );
        assert!(
            !after
                .iter()
                .any(|e| matches!(e, Event::CellTrained { cell, .. } if *cell == key)),
            "surviving cell {key} must not be retrained"
        );
    }
    for &sp in killed {
        let key = runs::cell_key(sp);
        assert!(
            after
                .iter()
                .any(|e| matches!(e, Event::CellTrained { cell, .. } if *cell == key)),
            "killed cell {key} must be retrained"
        );
    }
}

/// A damaged checkpoint (bit rot, torn write on a weird filesystem) must
/// never poison a resumed run: the store reports it in the journal, the
/// cell retrains, and the results still match an uninterrupted run.
#[test]
fn corrupted_checkpoint_self_heals_on_resume() {
    let cfg = small_config();
    let data = pipeline::prepare_data(&cfg);
    let (spec, epsilons) = small_grid();
    let victim = spec.cells().next().unwrap();

    let out = tmp_out("corrupted");
    let opened = runs::open(&out, "heatmap", &cfg, Some(&spec), &epsilons, false).unwrap();
    let reference = grid::run_grid_stored(&cfg, &data, &spec, &epsilons, 2, Some(&opened.store));
    let run_dir = opened.store.dir().to_path_buf();
    drop(opened);

    // Flip one byte in the middle of the victim cell's weights.
    let params_path = run_dir
        .join("cells")
        .join(runs::cell_key(victim))
        .join("params.bin");
    let mut bytes = fs::read(&params_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&params_path, bytes).unwrap();

    let resumed = runs::open(&out, "heatmap", &cfg, Some(&spec), &epsilons, true).unwrap();
    let rerun = grid::run_grid_stored(&cfg, &data, &spec, &epsilons, 2, Some(&resumed.store));
    assert_eq!(rerun, reference);

    let events = read_events(resumed.store.journal_path()).unwrap();
    let key = runs::cell_key(victim);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::CacheError { cell, .. } if *cell == key)),
        "the rejected checkpoint must be reported in the journal"
    );
}

/// Extending the ε sweep is a new run (new fingerprint), but the training
/// cache of the old run must not be consulted — while *within* one run,
/// the attack cache and training cache are independent, so re-running the
/// same store with the same sweep hits both.
#[test]
fn rerun_with_same_sweep_is_pure_cache() {
    let cfg = small_config();
    let data = pipeline::prepare_data(&cfg);
    let (spec, epsilons) = small_grid();

    let out = tmp_out("pure_cache");
    let opened = runs::open(&out, "heatmap", &cfg, Some(&spec), &epsilons, false).unwrap();
    let reference = grid::run_grid_stored(&cfg, &data, &spec, &epsilons, 2, Some(&opened.store));
    drop(opened);

    let resumed = runs::open(&out, "heatmap", &cfg, Some(&spec), &epsilons, true).unwrap();
    let rerun = grid::run_grid_stored(&cfg, &data, &spec, &epsilons, 2, Some(&resumed.store));
    assert_eq!(rerun, reference);

    let events = read_events(resumed.store.journal_path()).unwrap();
    let last_start = events
        .iter()
        .rposition(|e| matches!(e, Event::RunStarted { resumed: true }))
        .unwrap();
    let after = &events[last_start + 1..];
    assert!(
        !after
            .iter()
            .any(|e| matches!(e, Event::CellTrained { .. } | Event::AttackEvaluated { .. })),
        "a full resume must neither retrain nor re-attack anything"
    );
    // Every learnable cell's every ε came from the attack cache.
    let attack_hits = after
        .iter()
        .filter(|e| matches!(e, Event::AttackCached { .. }))
        .count();
    let learnable = reference.outcomes.iter().filter(|o| o.learnable).count();
    assert_eq!(attack_hits, learnable * epsilons.len());
}

/// Regression guard for the distributed-grid work: non-grid runs still take
/// the single-writer run lock, while shared grid-worker handles never do —
/// their mutual exclusion lives in per-cell leases instead.
#[test]
fn non_grid_runs_keep_the_single_writer_lock() {
    let cfg = small_config();
    let (spec, epsilons) = small_grid();
    let out = tmp_out("lock_regression");
    let exclusive = runs::open(&out, "fig1", &cfg, None, &epsilons, false).unwrap();
    let lock_path = exclusive
        .store
        .lock_path()
        .expect("a non-grid run holds the single-writer lock")
        .to_path_buf();
    assert!(lock_path.exists());
    assert!(!exclusive.store.is_shared());
    // While held, a second exclusive open of the same run is refused.
    assert!(matches!(
        runs::open(&out, "fig1", &cfg, None, &epsilons, true),
        Err(store::StoreError::Locked { .. })
    ));
    drop(exclusive);
    assert!(!lock_path.exists(), "dropping the store releases the lock");

    // Shared grid handles coexist and leave no lock file behind.
    let a = runs::open_grid(&out, "heatmap", &cfg, &spec, &epsilons).unwrap();
    let b = runs::open_grid(&out, "heatmap", &cfg, &spec, &epsilons).unwrap();
    assert!(a.store.is_shared() && b.store.is_shared());
    assert!(a.store.lock_path().is_none());
    let run_dir = a.store.dir().to_path_buf();
    let lock_sibling = run_dir.with_extension("lock");
    assert!(
        !lock_sibling.exists(),
        "grid workers must not create {}",
        lock_sibling.display()
    );
}

/// An exclusive open (resume or fresh) must stand down while a live grid
/// worker holds a cell lease: worst case it would `remove_dir_all` the run
/// out from under the worker.
#[test]
fn exclusive_open_is_refused_while_a_worker_lease_is_held() {
    let cfg = small_config();
    let (spec, epsilons) = small_grid();
    let out = tmp_out("leased_refusal");
    let worker = runs::open_grid(&out, "heatmap", &cfg, &spec, &epsilons).unwrap();
    let key = runs::cell_key(spec.cells().next().unwrap());
    let lease = worker.store.claim_cell(&key, 60_000).unwrap().unwrap();
    for resume in [false, true] {
        match runs::open(&out, "heatmap", &cfg, Some(&spec), &epsilons, resume) {
            Err(store::StoreError::Leased { cell, .. }) => assert_eq!(cell, key),
            other => panic!("expected Leased (resume={resume}), got {other:?}"),
        }
    }
    // Releasing the cell lifts the refusal.
    worker.store.release_cell(lease);
    let resumed = runs::open(&out, "heatmap", &cfg, Some(&spec), &epsilons, true).unwrap();
    assert!(resumed.resumed);
}

/// A run with a different configuration never shares a directory (and thus
/// never shares checkpoints) with an existing run.
#[test]
fn different_config_gets_a_fresh_run_directory() {
    let cfg = small_config();
    let (spec, epsilons) = small_grid();
    let out = tmp_out("fresh_dir");
    let first = runs::open(&out, "heatmap", &cfg, Some(&spec), &epsilons, false).unwrap();
    let mut tweaked = cfg.clone();
    tweaked.seed ^= 1;
    let second = runs::open(&out, "heatmap", &tweaked, Some(&spec), &epsilons, true).unwrap();
    assert_ne!(first.store.dir(), second.store.dir());
    // Even with --resume there is nothing to resume: the run is new.
    assert!(!second.resumed);
}
