//! In-process distributed-grid acceptance tests: several worker loops on
//! shared store handles cooperate on one run directory, and the reduced
//! grid is bitwise-identical to the single-process reference.

use std::fs;
use std::path::PathBuf;

use explore::worker::WorkerOptions;
use explore::{grid, pipeline, presets, reduce, runs};
use store::journal::read_events;
use store::Event;

fn tmp_out(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spiking_armor_grid_workers_{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Fast lease options for tests: short heartbeats and polls, a TTL no test
/// run ever outlives.
fn fast_opts() -> WorkerOptions {
    WorkerOptions {
        ttl_millis: 60_000,
        heartbeat_millis: 50,
        poll_millis: 10,
        pause_at: None,
    }
}

#[test]
fn three_workers_reduce_bitwise_identical_to_the_serial_grid() {
    let (config, spec, epsilons) = presets::tiny_grid();
    let data = pipeline::prepare_data(&config);

    // Serial reference through the exclusive single-process path.
    let out_ref = tmp_out("reference");
    let opened = runs::open(&out_ref, "heatmap", &config, Some(&spec), &epsilons, false).unwrap();
    let reference = grid::run_grid_stored(&config, &data, &spec, &epsilons, 1, Some(&opened.store));
    drop(opened);

    // Distributed run: three shared handles, three concurrent worker loops.
    let out = tmp_out("distributed");
    let reports: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let (config, data, spec, epsilons, out) = (&config, &data, &spec, &epsilons, &out);
                scope.spawn(move || {
                    let opened = runs::open_grid(out, "heatmap", config, spec, epsilons).unwrap();
                    // Grid workers never take the single-writer lock.
                    assert!(opened.store.is_shared());
                    assert!(opened.store.lock_path().is_none());
                    explore::run_worker(config, data, spec, epsilons, &opened.store, &fast_opts())
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Work-conservation across the fleet: every cell computed exactly once,
    // nothing abandoned (no lease ever lapsed with a 60 s TTL).
    let completed: usize = reports.iter().map(|r| r.completed.len()).sum();
    assert_eq!(
        completed,
        spec.len(),
        "each cell computed by exactly one worker"
    );
    assert_eq!(reports.iter().map(|r| r.abandoned).sum::<usize>(), 0);

    // The reduced grid is bitwise-identical to the serial reference.
    let opened = runs::open_grid(&out, "heatmap", &config, &spec, &epsilons).unwrap();
    let reduced = reduce::reduce_grid(&opened.store, &spec, &epsilons).unwrap();
    assert_eq!(reduced, reference);
    assert_eq!(
        serde_json::to_string_pretty(&reduced).unwrap(),
        serde_json::to_string_pretty(&reference).unwrap(),
        "serialised artifacts must match byte for byte"
    );

    // The journal proves the protocol ran: every cell was leased and
    // completed exactly once, and no worker needed a reclaim.
    let events = read_events(opened.store.journal_path()).unwrap();
    for cell in spec.cells() {
        let key = runs::cell_key(cell);
        let completions = events
            .iter()
            .filter(|e| matches!(e, Event::CellCompleted { cell, .. } if *cell == key))
            .count();
        assert_eq!(completions, 1, "cell {key} must complete exactly once");
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::LeaseAcquired { cell, .. } if *cell == key)),
            "cell {key} must have been leased"
        );
    }
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, Event::LeaseReclaimed { .. })),
        "healthy workers never trip a reclaim"
    );
    // No lease files survive an orderly fleet shutdown, so a later
    // exclusive open (e.g. `spiking-armor heatmap --resume`) succeeds.
    drop(opened);
    let exclusive = runs::open(&out, "heatmap", &config, Some(&spec), &epsilons, true).unwrap();
    assert!(exclusive.resumed);
}

/// A late-joining worker finds the grid already complete and exits without
/// computing (or claiming) anything.
#[test]
fn late_worker_finds_nothing_to_do() {
    let (config, spec, epsilons) = presets::tiny_grid();
    let data = pipeline::prepare_data(&config);
    let out = tmp_out("late");
    let opened = runs::open_grid(&out, "heatmap", &config, &spec, &epsilons).unwrap();
    let first = explore::run_worker(
        &config,
        &data,
        &spec,
        &epsilons,
        &opened.store,
        &fast_opts(),
    )
    .unwrap();
    assert_eq!(first.completed.len(), spec.len());

    let late = runs::open_grid(&out, "heatmap", &config, &spec, &epsilons).unwrap();
    assert!(late.resumed, "the run directory already exists");
    let report =
        explore::run_worker(&config, &data, &spec, &epsilons, &late.store, &fast_opts()).unwrap();
    assert!(report.completed.is_empty());
    assert_eq!(report.abandoned, 0);
    assert_eq!(report.busy, 0);
}
