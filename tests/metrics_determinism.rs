//! Determinism acceptance tests for the metrics layer (DESIGN.md §11).
//!
//! The contract under test: everything `metrics.json` records outside its
//! trailing `"timing"` section is **bitwise-identical** across `--threads`
//! settings, and a run that is killed partway through and resumed converges
//! to the same result-describing counters as an uninterrupted run.
//!
//! The recorder is global state (one registry per process), so the whole
//! scenario lives in a single `#[test]` — parallel test threads must never
//! interleave `enable`/`reset` calls.

use std::fs;
use std::path::{Path, PathBuf};

use explore::{grid, pipeline, presets, runs, GridSpec};
use snn::StructuralParams;

fn tmp_out(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spiking_armor_metrics_{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_config() -> explore::ExperimentConfig {
    let mut cfg = presets::quick();
    cfg.epochs = 3;
    cfg.attack_samples = 8;
    cfg.pgd_steps = 2;
    cfg.accuracy_threshold = 0.15;
    cfg
}

fn small_grid() -> (GridSpec, Vec<f32>) {
    (GridSpec::new(vec![0.5, 1.5], vec![2, 4]), vec![0.1f32, 0.3])
}

/// Runs the small grid into a store under `out` with `threads` workers
/// while recording, and returns the merged registry. Resets the recorder
/// first so each invocation observes exactly one run.
fn recorded_grid(out: &Path, threads: usize, resume: bool) -> obs::Registry {
    let cfg = small_config();
    let data = pipeline::prepare_data(&cfg);
    let (spec, epsilons) = small_grid();
    obs::reset();
    obs::enable(false);
    let opened = runs::open(out, "heatmap", &cfg, Some(&spec), &epsilons, resume).unwrap();
    assert_eq!(opened.resumed, resume);
    let _ = grid::run_grid_stored(&cfg, &data, &spec, &epsilons, threads, Some(&opened.store));
    obs::disable();
    obs::snapshot()
}

#[test]
fn metrics_are_thread_invariant_and_resume_converges() {
    // --- Part 1: thread invariance -------------------------------------
    // Same work at 1, 2 and 4 workers; the deterministic document must be
    // byte-for-byte identical (fresh store each time: no cache crosstalk).
    let single = recorded_grid(&tmp_out("t1"), 1, false);
    let reference = obs::deterministic_json(&single);

    // The document must actually describe the run, not be trivially empty.
    let (spec, epsilons) = small_grid();
    let cells = spec.cells().count() as u64;
    assert_eq!(
        single.counter("grid/cells_completed") + single.counter("grid/cells_skipped"),
        cells,
        "every grid cell ends as completed or skipped"
    );
    assert!(single.counter("tensor/gemm_macs") > 0);
    assert!(single.counter("attack/pgd_iters") > 0);
    // Pool and prepack accounting rides the same contract: dispatch counts
    // are per helper entry (not per worker) and hit/miss counts are per
    // bind (not per shard), so the bitwise comparison below covers them.
    assert!(single.counter("tensor/pool_dispatches") > 0);
    assert!(
        single.counter("tensor/prepack_misses") > 0,
        "cold binds must journal panel builds"
    );
    assert!(
        single.counter("tensor/prepack_hits") > 0,
        "frozen-weight forwards (eval, attacks) must reuse cached panels"
    );
    assert_eq!(
        single.counter("sweep/robustness_points"),
        single.counter("grid/cells_completed") * epsilons.len() as u64
    );
    assert_eq!(
        single
            .histogram("sweep/robustness")
            .map(obs::Histogram::total),
        Some(single.counter("sweep/robustness_points"))
    );

    for threads in [2, 4] {
        let reg = recorded_grid(&tmp_out(&format!("t{threads}")), threads, false);
        assert_eq!(
            obs::deterministic_json(&reg),
            reference,
            "metrics must be bitwise-identical at --threads {threads}"
        );
    }

    // The written artifact's deterministic prefix is that same document
    // (the global registry still holds the 4-thread run at this point).
    let artifact_dir = tmp_out("artifact");
    let path = artifact_dir.join("metrics.json");
    obs::write_metrics(&path).unwrap();
    let written = fs::read_to_string(&path).unwrap();
    assert_eq!(
        obs::strip_timing(&written),
        &reference[..reference.len() - 1],
        "metrics.json must start with the deterministic document, timing last"
    );

    // --- Part 2: kill-and-resume convergence ---------------------------
    // Complete a run, reconstruct the on-disk state of a SIGKILL after the
    // first two cells (the tests/resume.rs recipe), then resume. Work
    // counters legitimately differ (cached cells are not retrained), but
    // every result-describing value must converge to the reference.
    let out = tmp_out("resume");
    let killed_reference = recorded_grid(&out, 2, false);
    let run_dir = {
        let cfg = small_config();
        let opened = runs::open(&out, "heatmap", &cfg, Some(&spec), &epsilons, true).unwrap();
        opened.store.dir().to_path_buf()
    };
    let all_cells: Vec<StructuralParams> = spec.cells().collect();
    for &sp in &all_cells[2..] {
        fs::remove_dir_all(run_dir.join("cells").join(runs::cell_key(sp))).unwrap();
    }
    // Tear the journal mid-line, as a kill during an append would.
    let journal_path = run_dir.join("events.jsonl");
    let journal_bytes = fs::read(&journal_path).unwrap();
    fs::write(&journal_path, &journal_bytes[..journal_bytes.len() - 7]).unwrap();

    let resumed = recorded_grid(&out, 2, true);
    for counter in [
        "grid/cells_completed",
        "grid/cells_skipped",
        "sweep/robustness_points",
    ] {
        assert_eq!(
            resumed.counter(counter),
            killed_reference.counter(counter),
            "resumed run must converge on {counter}"
        );
    }
    assert_eq!(
        resumed.histogram("sweep/robustness"),
        killed_reference.histogram("sweep/robustness"),
        "resumed run must reproduce the robustness distribution exactly"
    );
    // The surviving cells were served from the cache, not retrained: the
    // work counters prove the resume actually resumed.
    assert_eq!(resumed.counter("grid/cells_cached"), 2);
    assert!(
        resumed.counter("grid/cells_trained") < killed_reference.counter("grid/cells_trained"),
        "a resumed run must retrain fewer cells than a cold one"
    );

    obs::reset();
}
