//! Cross-process test harness: spawns real `spiking-armor grid-worker`
//! children, watches their journaled stdout checkpoints, and SIGKILLs them
//! at exact protocol boundaries.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::{Duration, Instant};

/// The `spiking-armor` binary under test.
pub fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spiking-armor"))
}

/// A spawned grid-worker child with its stdout streamed line by line
/// through a channel (so waiting for a checkpoint line can time out
/// instead of blocking forever on a wedged child).
pub struct WorkerProc {
    child: Child,
    lines: Receiver<String>,
}

/// Spawns `spiking-armor grid-worker --preset tiny` on `out_dir` with fast
/// lease tuning, plus any extra flags (e.g. `--pause-at mid-cell`).
pub fn spawn_worker(out_dir: &Path, extra: &[&str]) -> WorkerProc {
    let mut child = bin()
        .args(["grid-worker", "--preset", "tiny"])
        .args(["--ttl-ms", "60000", "--heartbeat-ms", "50"])
        .arg("--out-dir")
        .arg(out_dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("cannot spawn grid-worker");
    let stdout = child.stdout.take().unwrap();
    let (tx, lines) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break; // receiver gone; keep draining is pointless
            }
        }
    });
    WorkerProc { child, lines }
}

impl WorkerProc {
    /// Blocks until a stdout line containing `needle` arrives and returns
    /// it. Panics after `timeout` — a missing checkpoint line means the
    /// worker took a wrong path, and hanging the suite would hide that.
    pub fn wait_for_line(&mut self, needle: &str, timeout: Duration) -> String {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match self.lines.recv_timeout(left) {
                Ok(line) if line.contains(needle) => return line,
                Ok(_) => continue,
                Err(RecvTimeoutError::Timeout) => {
                    panic!("worker {} never printed {needle:?}", self.child.id())
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!(
                        "worker {} exited before printing {needle:?}",
                        self.child.id()
                    )
                }
            }
        }
    }

    /// SIGKILLs the child (`Child::kill` is SIGKILL on Unix — the paused
    /// worker gets no chance to clean up, exactly like a crash) and reaps
    /// it.
    pub fn kill9(mut self) -> u32 {
        let pid = self.child.id();
        self.child.kill().expect("cannot SIGKILL the worker");
        self.child.wait().expect("cannot reap the killed worker");
        pid
    }

    /// Waits for a clean exit, asserting success.
    pub fn wait_success(mut self) {
        let status = self.child.wait().expect("cannot wait for the worker");
        assert!(status.success(), "worker exited with {status}");
    }
}

/// Runs `spiking-armor grid-reduce --preset tiny [--verify]` on `out_dir`
/// to completion and returns its stdout. Panics on a non-zero exit.
pub fn run_reduce(out_dir: &Path, verify: bool) -> String {
    let mut cmd = bin();
    cmd.args(["grid-reduce", "--preset", "tiny"]);
    if verify {
        cmd.arg("--verify");
    }
    let output = cmd
        .arg("--out-dir")
        .arg(out_dir)
        .output()
        .expect("cannot run grid-reduce");
    assert!(
        output.status.success(),
        "grid-reduce failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// The single `run-<fingerprint>` directory inside `<out_dir>/runs`.
pub fn only_run_dir(out_dir: &Path) -> PathBuf {
    let runs = out_dir.join("runs");
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(&runs)
        .unwrap_or_else(|e| panic!("no runs directory under {}: {e}", out_dir.display()))
        .map(|entry| entry.unwrap().path())
        // The run directory proper, not its `.leases` sibling.
        .filter(|p| p.is_dir() && p.extension().is_none())
        .collect();
    assert_eq!(
        dirs.len(),
        1,
        "expected exactly one run directory: {dirs:?}"
    );
    dirs.remove(0)
}
