//! Cross-process SIGKILL fault-injection suite: real `grid-worker`
//! processes are frozen at journaled protocol checkpoints and killed with
//! SIGKILL; the surviving fleet must still complete the grid, and the
//! reduced artifact must be bitwise-identical to the serial single-process
//! reference — for every injection point.

mod support;

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Duration;

use explore::{grid, pipeline, presets, report, runs};
use store::journal::read_events;
use store::Event;

use support::{only_run_dir, run_reduce, spawn_worker};

fn fresh_out(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spiking_armor_fault_{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The serial single-process `grid.json` bytes for the tiny grid, computed
/// once and shared by every scenario.
fn reference_bytes() -> &'static [u8] {
    static REFERENCE: OnceLock<Vec<u8>> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let (config, spec, epsilons) = presets::tiny_grid();
        let data = pipeline::prepare_data(&config);
        let out = fresh_out("serial_reference");
        let opened = runs::open(&out, "heatmap", &config, Some(&spec), &epsilons, false).unwrap();
        let result =
            grid::run_grid_stored(&config, &data, &spec, &epsilons, 1, Some(&opened.store));
        let path = out.join("grid.json");
        report::save_json(&result, &path).unwrap();
        fs::read(&path).unwrap()
    })
}

/// What one injection scenario left behind, for the per-point assertions.
struct Aftermath {
    out: PathBuf,
    killed_pid: u32,
    /// The cell the paused worker was computing when it was killed.
    killed_cell: String,
    events: Vec<Event>,
}

/// Runs the full scenario for one pause point: freeze a worker there, kill
/// it, let two clean workers finish the grid, reduce with `--verify`, and
/// require the artifact to match the serial reference byte for byte.
fn inject_and_recover(pause_at: &str) -> Aftermath {
    let out = fresh_out(pause_at);
    let mut paused = spawn_worker(&out, &["--pause-at", pause_at]);
    let line = paused.wait_for_line("worker paused at", Duration::from_secs(300));
    let killed_cell = line
        .split("(cell ")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .unwrap_or_else(|| panic!("malformed pause line {line:?}"))
        .to_string();
    let killed_pid = paused.kill9();

    // Two clean workers recover whatever the victim left behind: a stale
    // dead-pid lease, a half-computed cell, or an already-published one.
    let a = spawn_worker(&out, &[]);
    let b = spawn_worker(&out, &[]);
    a.wait_success();
    b.wait_success();

    let stdout = run_reduce(&out, true);
    assert!(
        stdout.contains("reduce guard: ok (4 cells bitwise-identical to single-process grid)"),
        "missing the bitwise-identity guard\nstdout: {stdout}"
    );
    assert_eq!(
        fs::read(out.join("grid.json")).unwrap(),
        reference_bytes(),
        "[{pause_at}] reduced artifact must equal the serial reference byte for byte"
    );

    let events = read_events(&only_run_dir(&out).join("events.jsonl")).unwrap();
    // Exactly-once completion holds at every injection point.
    let (_, spec, _) = presets::tiny_grid();
    for cell in spec.cells() {
        let key = runs::cell_key(cell);
        let completions = events
            .iter()
            .filter(|e| matches!(e, Event::CellCompleted { cell, .. } if *cell == key))
            .count();
        assert_eq!(
            completions, 1,
            "[{pause_at}] cell {key} must be published exactly once"
        );
    }
    Aftermath {
        out,
        killed_pid,
        killed_cell,
        events,
    }
}

/// Asserts the victim's cell was reclaimed from its dead pid — the recovery
/// path for every kill that happens *before* the outcome is published.
fn assert_reclaimed_from(aftermath: &Aftermath, pause_at: &str) {
    assert!(
        aftermath.events.iter().any(|e| matches!(
            e,
            Event::LeaseReclaimed { cell, old_pid, reason, .. }
                if *cell == aftermath.killed_cell
                    && *old_pid == aftermath.killed_pid
                    && reason == "dead pid"
        )),
        "[{pause_at}] cell {} must be reclaimed from dead pid {}",
        aftermath.killed_cell,
        aftermath.killed_pid
    );
    // And the reclaimer (not the victim) published it.
    assert!(
        aftermath.events.iter().any(|e| matches!(
            e,
            Event::CellCompleted { cell, pid }
                if *cell == aftermath.killed_cell && *pid != aftermath.killed_pid
        )),
        "[{pause_at}] a surviving worker must publish the reclaimed cell"
    );
    cleanup(&aftermath.out);
}

fn cleanup(out: &Path) {
    let _ = fs::remove_dir_all(out);
}

#[test]
fn sigkill_after_lease_is_recovered() {
    let aftermath = inject_and_recover("after-lease");
    assert_reclaimed_from(&aftermath, "after-lease");
}

#[test]
fn sigkill_mid_cell_is_recovered() {
    let aftermath = inject_and_recover("mid-cell");
    assert_reclaimed_from(&aftermath, "mid-cell");
    // The victim trained before dying; its checkpoint is either served to
    // the reclaimer as a cache hit or recomputed identically — the bitwise
    // guard above already proved the result is the same either way.
}

#[test]
fn sigkill_before_complete_is_recovered() {
    let aftermath = inject_and_recover("before-complete");
    assert_reclaimed_from(&aftermath, "before-complete");
}

#[test]
fn sigkill_after_artifact_keeps_the_published_outcome() {
    let aftermath = inject_and_recover("after-artifact");
    // The victim died *after* its commit point: its outcome stands, nobody
    // recomputes it, and the victim itself is its publisher of record.
    assert!(
        aftermath.events.iter().any(|e| matches!(
            e,
            Event::CellCompleted { cell, pid }
                if *cell == aftermath.killed_cell && *pid == aftermath.killed_pid
        )),
        "the killed worker's published outcome must be the one that counts"
    );
    // Survivors saw the cell as complete and never claimed it again: no
    // second LeaseAcquired for it after the victim's.
    let claims = aftermath
        .events
        .iter()
        .filter(
            |e| matches!(e, Event::LeaseAcquired { cell, .. } if *cell == aftermath.killed_cell),
        )
        .count();
    assert_eq!(claims, 1, "a published cell is never claimed again");
    cleanup(&aftermath.out);
}
