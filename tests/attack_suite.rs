//! Integration of the full attack suite against *trained* models: relative
//! strength ordering, worst-case ensembles, and targeted attacks.

use attacks::{
    evaluate_attack, Attack, Fgsm, MomentumPgd, Pgd, PgdL2, TargetedPgd, UniformNoise, WorstCase,
};
use explore::{pipeline, presets};
use snn::StructuralParams;

fn trained_snn() -> (
    explore::ExperimentConfig,
    pipeline::SplitData,
    pipeline::Trained<snn::SpikingCnn>,
) {
    let mut cfg = presets::quick();
    cfg.epochs = 8;
    cfg.attack_samples = 24;
    cfg.pgd_steps = 5;
    let data = pipeline::prepare_data(&cfg);
    let trained = pipeline::train_snn(&cfg, &data, StructuralParams::new(1.0, 6));
    (cfg, data, trained)
}

#[test]
fn gradient_attacks_beat_noise_and_ensemble_beats_members() {
    let (cfg, data, trained) = trained_snn();
    let subset = data.test.subset(cfg.attack_samples);
    let eps = presets::paper_eps_to_pixel(0.5);
    let run = |attack: &dyn Attack| {
        evaluate_attack(
            &trained.classifier,
            attack,
            subset.images(),
            subset.labels(),
            cfg.batch_size,
        )
        .adversarial_accuracy
    };
    let noise = run(&UniformNoise::new(eps, 1));
    let fgsm = run(&Fgsm::new(eps));
    let pgd = run(&Pgd::standard(eps));
    let mim = run(&MomentumPgd::standard(eps));
    let l2 = run(&PgdL2::standard(eps));
    let ensemble = run(&WorstCase::standard(eps));

    // Gradient attacks must beat the random control.
    assert!(pgd <= noise, "PGD ({pgd}) weaker than noise ({noise})");
    assert!(
        fgsm <= noise + 0.1,
        "FGSM ({fgsm}) no better than noise ({noise})"
    );
    // The worst-case ensemble is at least as strong as every member it
    // contains (PGD, momentum PGD, FGSM).
    assert!(
        ensemble <= pgd + 1e-6,
        "ensemble ({ensemble}) weaker than PGD ({pgd})"
    );
    assert!(
        ensemble <= mim + 1e-6,
        "ensemble ({ensemble}) weaker than MIM ({mim})"
    );
    assert!(
        ensemble <= fgsm + 1e-6,
        "ensemble ({ensemble}) weaker than FGSM ({fgsm})"
    );
    // An L2 ball with radius = the L∞ budget is a subset: cannot be stronger
    // than PGD by more than noise.
    assert!(
        l2 >= pgd - 1e-6,
        "L2 ({l2}) should not exceed L∞ strength ({pgd})"
    );
}

#[test]
fn targeted_attack_forces_chosen_labels_at_large_budget() {
    let (_cfg, data, trained) = trained_snn();
    let subset = data.test.subset(12);
    // Target: the next class cyclically (never the true label).
    let targets: Vec<usize> = subset.labels().iter().map(|&l| (l + 1) % 10).collect();
    let eps = presets::paper_eps_to_pixel(1.5);
    let success =
        TargetedPgd::standard(eps).success_rate(&trained.classifier, subset.images(), &targets);
    // At a near-total budget the attacker should usually reach its target.
    assert!(
        success >= 0.25,
        "targeted attack succeeded on only {:.0}% at a huge budget",
        success * 100.0
    );
    let (_, _, trained2) = trained_snn();
    // Determinism of the whole pipeline.
    let again =
        TargetedPgd::standard(eps).success_rate(&trained2.classifier, subset.images(), &targets);
    assert_eq!(success, again);
}

#[test]
fn worst_case_ensemble_respects_budget_on_trained_model() {
    let (_, data, trained) = trained_snn();
    let subset = data.test.subset(6);
    let eps = 0.2;
    let adv =
        WorstCase::standard(eps).perturb(&trained.classifier, subset.images(), subset.labels());
    assert!(adv.sub(subset.images()).max_abs() <= eps + 1e-5);
    assert!(adv.min() >= 0.0 && adv.max() <= 1.0);
}
