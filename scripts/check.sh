#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, and the full test suite.
#
# Usage: scripts/check.sh
# Runs from any directory; exits non-zero on the first failing step.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Workspace contracts clippy cannot express: panic hygiene on I/O paths,
# wall-clock purity of artifacts, deterministic iteration, zero-alloc hot
# loops, SAFETY-commented unsafe, and the interprocedural passes (lock
# order, condvar loops, unsafe provenance, transitive determinism). The
# committed baseline means the gate fails only on NEW findings — the
# stderr delta line reports new/known/resolved counts. After fixing a
# baselined finding, regenerate with:
#   cargo run -q -p lint --release --bin armor-lint -- \
#     --baseline lint-baseline.json --write-baseline
# See DESIGN.md §10 (line rules) and §15 (passes, baseline workflow).
echo "==> armor-lint --sarif --baseline lint-baseline.json"
lint_sarif=$(mktemp)
cargo run -q -p lint --release --bin armor-lint -- \
    --sarif --baseline lint-baseline.json >"$lint_sarif"
if ! grep -qF '"version": "2.1.0"' "$lint_sarif"; then
    echo "FAILED: armor-lint --sarif did not emit a SARIF 2.1.0 document" >&2
    exit 1
fi
rm -f "$lint_sarif"

echo "==> cargo doc --workspace --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run --quiet

# Kernel smoke: seconds-scale run of every micro-bench op, ending in the
# five guards — allocation (warm *_into kernels must not allocate), LIF
# (forced-scalar vs dispatched kernels agree bitwise), conv-into (the
# workspace conv must not be slower than its allocating twin), spawn
# (warm pooled/prepacked forwards spawn no threads and pack no panels),
# and obs (disabled metrics recording costs near-zero). Does not touch
# the committed BENCH_tensor.json.
echo "==> cargo bench --bench micro -- --smoke"
smoke_out=$(cargo bench --bench micro --quiet -- --smoke | tee /dev/stderr)
if ! grep -q "lif guard: ok" <<<"$smoke_out"; then
    echo "FAILED: smoke bench did not exercise both LIF kernel paths" >&2
    exit 1
fi
if ! grep -q "spawn guard: ok" <<<"$smoke_out"; then
    echo "FAILED: smoke bench did not run the persistent-pool spawn guard" >&2
    exit 1
fi

# Serving smoke: boot the scoring service on a loopback port, drive it
# with the bench load generator, and validate the emitted report against
# the bench_serve/v1 schema. Does not touch the committed BENCH_serve.json.
echo "==> serve smoke (spiking-armor serve + serve-bench --smoke)"
cargo build -q --release --bin spiking-armor --bin serve-bench
serve_dir=$(mktemp -d)
serve_log="$serve_dir/serve.log"
target/release/spiking-armor serve --preset tiny --addr 127.0.0.1:0 \
    --out-dir "$serve_dir/figures" >"$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$serve_dir"' EXIT
serve_addr=""
for _ in $(seq 1 300); do
    serve_addr=$(sed -n 's/^serving on //p' "$serve_log" | head -n 1)
    [ -n "$serve_addr" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "FAILED: the serve process died before binding:" >&2
        cat "$serve_log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$serve_addr" ]; then
    echo "FAILED: the serve process never announced its port:" >&2
    cat "$serve_log" >&2
    exit 1
fi
target/release/serve-bench --smoke --shutdown --addr "$serve_addr" \
    --out "$serve_dir/BENCH_serve.json"
wait "$serve_pid"
for key in '"schema": "bench_serve/v1"' '"concurrency"' '"reqs_per_sec"' \
    '"p50"' '"p95"' '"p99"'; do
    if ! grep -qF "$key" "$serve_dir/BENCH_serve.json"; then
        echo "FAILED: BENCH_serve.json is missing $key:" >&2
        cat "$serve_dir/BENCH_serve.json" >&2
        exit 1
    fi
done
rm -rf "$serve_dir"
trap - EXIT

# Distributed-grid smoke: two real grid-worker processes race over the
# tiny grid's cells through the per-cell lease protocol, then the reducer
# re-derives the grid single-process and proves the merged artifact is
# bitwise-identical (the "reduce guard" line). See DESIGN.md §16.
echo "==> distributed-grid smoke (2x grid-worker + grid-reduce --verify)"
grid_dir=$(mktemp -d)
trap 'rm -rf "$grid_dir"' EXIT
target/release/spiking-armor grid-worker --preset tiny \
    --out-dir "$grid_dir" >"$grid_dir/worker-a.log" 2>&1 &
grid_a=$!
target/release/spiking-armor grid-worker --preset tiny \
    --out-dir "$grid_dir" >"$grid_dir/worker-b.log" 2>&1 &
grid_b=$!
if ! wait "$grid_a" || ! wait "$grid_b"; then
    echo "FAILED: a grid worker exited non-zero:" >&2
    cat "$grid_dir/worker-a.log" "$grid_dir/worker-b.log" >&2
    exit 1
fi
reduce_out=$(target/release/spiking-armor grid-reduce --preset tiny \
    --verify --out-dir "$grid_dir" | tee /dev/stderr)
if ! grep -q "reduce guard: ok" <<<"$reduce_out"; then
    echo "FAILED: grid-reduce did not prove bitwise identity with the" \
        "single-process grid" >&2
    exit 1
fi
rm -rf "$grid_dir"
trap - EXIT

# The metrics layer first: its merge/determinism properties (proptests
# included) underpin the workspace-wide metrics determinism test.
echo "==> cargo test -p obs"
cargo test -q -p obs

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "All checks passed."
