#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, and the full test suite.
#
# Usage: scripts/check.sh
# Runs from any directory; exits non-zero on the first failing step.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Workspace contracts clippy cannot express: panic hygiene on I/O paths,
# wall-clock purity of artifacts, deterministic iteration, zero-alloc hot
# loops, and SAFETY-commented unsafe. See DESIGN.md §10.
echo "==> armor-lint"
cargo run -q -p lint --release --bin armor-lint

echo "==> cargo doc --workspace --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run --quiet

# Kernel smoke: seconds-scale run of every micro-bench op, ending in the
# allocation guard — fails if any warm *_into kernel allocates from the
# workspace arena — the LIF guard — fails unless the forced-scalar and
# dispatched (SIMD where available) LIF kernels both run and agree
# bitwise — and the obs guard — fails if disabled metrics recording does
# measurable work. Does not touch the committed BENCH_tensor.json.
echo "==> cargo bench --bench micro -- --smoke"
smoke_out=$(cargo bench --bench micro --quiet -- --smoke | tee /dev/stderr)
if ! grep -q "lif guard: ok" <<<"$smoke_out"; then
    echo "FAILED: smoke bench did not exercise both LIF kernel paths" >&2
    exit 1
fi

# The metrics layer first: its merge/determinism properties (proptests
# included) underpin the workspace-wide metrics determinism test.
echo "==> cargo test -p obs"
cargo test -q -p obs

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "All checks passed."
